#include "cloud/cost.h"

#include "common/units.h"

namespace hivesim::cloud {

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& o) {
  instance += o.instance;
  internal_egress += o.internal_egress;
  external_egress += o.external_egress;
  data_loading += o.data_loading;
  return *this;
}

CostBreakdown PriceVm(const VmUsage& usage) {
  CostBreakdown cost;
  const VmType& vm = GetVmType(usage.type);
  const double rate = usage.spot ? vm.spot_per_hour : vm.ondemand_per_hour;
  cost.instance = rate * usage.hours;

  for (const auto& [dst, bytes] : usage.egress_bytes_by_dst) {
    const double price = EgressPricePerGb(usage.site, dst);
    const double dollars = TrafficCost(bytes, price);
    const bool internal = dst.provider == usage.site.provider &&
                          dst.continent == usage.site.continent;
    if (internal) {
      cost.internal_egress += dollars;
    } else {
      cost.external_egress += dollars;
    }
  }

  cost.data_loading =
      TrafficCost(usage.data_ingress_bytes, DataIngressPricePerGb());
  return cost;
}

CostBreakdown PriceFleet(const std::vector<VmUsage>& fleet) {
  CostBreakdown total;
  for (const VmUsage& usage : fleet) total += PriceVm(usage);
  return total;
}

double CostPerMillionSamples(double dollars_per_hour,
                             double samples_per_sec) {
  if (samples_per_sec <= 0) return 0;
  const double samples_per_hour = samples_per_sec * kHour;
  return dollars_per_hour / samples_per_hour * 1e6;
}

}  // namespace hivesim::cloud
