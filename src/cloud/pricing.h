#ifndef HIVESIM_CLOUD_PRICING_H_
#define HIVESIM_CLOUD_PRICING_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "compute/gpu.h"
#include "compute/host.h"
#include "net/location.h"

namespace hivesim::cloud {

/// Instance (VM) types rented in the paper's experiments.
enum class VmTypeId : uint8_t {
  kGcT4,          ///< GC n1-standard-8 + 1 T4 (Sections 4-6).
  kAwsT4,         ///< AWS g4dn.2xlarge + 1 T4 (Section 5).
  kAzureT4,       ///< Azure NC4as_T4_v3 + 1 T4 (Section 5).
  kLambdaA10,     ///< LambdaLabs 1xA10, on-demand only (Section 3).
  kGc4xT4,        ///< Best multi-T4 single node on GC (PyTorch DDP).
  kGcDgx2,        ///< DGX-2 (8xV100) on GC (Sections 6-7).
  kGcA100,        ///< A100 80GB (Section 11 ASR case study).
  kOnPremRtx8000, ///< On-prem consumer workstation (setting E). Sunk cost.
  kOnPremDgx2,    ///< On-prem DGX-2 (setting F). Sunk cost.
};

/// Static description and pricing of a VM type (Table 1 and Section 7).
struct VmType {
  VmTypeId id;
  std::string_view name;
  net::Provider provider;
  compute::GpuModel gpu;
  int gpu_count;
  compute::HostClass host;
  double spot_per_hour;      ///< Spot/preemptible $/h (== on-demand if none).
  double ondemand_per_hour;  ///< On-demand $/h (0 for on-prem sunk cost).
};

const VmType& GetVmType(VmTypeId id);
std::string_view VmTypeName(VmTypeId id);

/// Egress price in $/GB for a byte leaving a VM of `src_provider` in
/// `src_continent` toward `dst_continent` under `dst_provider`.
/// Implements the Table 1 schedule:
///   - traffic touching Oceania uses the ANY-OCE rate
///     (GC $0.15, AWS $0.02, Azure $0.08),
///   - other intercontinental traffic uses the between-continents rate
///     (GC $0.08, AWS $0.02, Azure $0.02),
///   - same-continent, same-provider traffic uses the inter-zone rate
///     (GC $0.01, AWS $0.01, Azure $0.00),
///   - same-continent, cross-provider traffic exits to the internet at the
///     inter-region rate for that continent,
///   - LambdaLabs and on-premise hosts do not charge egress.
double EgressPricePerGb(net::Provider src_provider,
                        net::Continent src_continent,
                        net::Provider dst_provider,
                        net::Continent dst_continent);

/// Convenience overload on sites.
double EgressPricePerGb(const net::Site& src, const net::Site& dst);

/// Backblaze B2 egress rate for dataset streaming: $0.01/GB worldwide.
double DataIngressPricePerGb();

/// Backblaze B2 storage rate: $0.005/GB/month.
double StoragePricePerGbMonth();

}  // namespace hivesim::cloud

#endif  // HIVESIM_CLOUD_PRICING_H_
