#include "cloud/spot_market.h"

#include <cmath>
#include <limits>

#include "common/units.h"
#include "telemetry/telemetry.h"

namespace hivesim::cloud {

namespace {
// UTC offsets of the experiment zones: Iowa (-6), Belgium (+1),
// Taiwan (+8), Sydney (+10).
double UtcOffsetHours(net::Continent c) {
  switch (c) {
    case net::Continent::kUs:
      return -6;
    case net::Continent::kEu:
      return +1;
    case net::Continent::kAsia:
      return +8;
    case net::Continent::kAus:
      return +10;
  }
  return 0;
}

constexpr double kDayStartHour = 8.0;
constexpr double kDayEndHour = 20.0;
constexpr double kSecondsPerMonth = 30.0 * 24.0 * kHour;
}  // namespace

double SpotMarket::LocalHour(net::Continent continent, double now) {
  const double hours = now / kHour + UtcOffsetHours(continent);
  double h = std::fmod(hours, 24.0);
  if (h < 0) h += 24.0;
  return h;
}

double SpotMarket::HazardAt(net::Continent continent, double now) const {
  // Baseline hazard so that P(interrupted in 30 days) at the night rate
  // equals base_monthly_interruption_rate.
  const double base =
      -std::log(1.0 - config_.base_monthly_interruption_rate) /
      kSecondsPerMonth;
  const double h = LocalHour(continent, now);
  const bool daytime = h >= kDayStartHour && h < kDayEndHour;
  double hazard = daytime ? base * config_.daylight_multiplier : base;
  for (const HazardWindow& w : hazard_windows_) {
    if (w.continent == continent && now >= w.start_sec && now < w.end_sec) {
      hazard *= w.multiplier;
    }
  }
  return hazard;
}

double SpotMarket::SampleInterruptionDelay(net::Continent continent,
                                           double now) {
  telemetry::Count("spot.interruption_draws");
  // A zero base rate makes the hazard identically zero at every hour:
  // return "never" up front instead of spinning through ~87,600 hourly
  // segments (and burning one random draw per segment).
  if (config_.base_monthly_interruption_rate <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  // Piecewise-constant hazard: advance hour by hour, drawing an
  // exponential within each segment. Segments whose hazard is zero (a
  // window with multiplier 0) are skipped without consuming a draw.
  double t = now;
  for (int guard = 0; guard < 24 * 365 * 10; ++guard) {
    const double rate = HazardAt(continent, t);
    if (rate > 0) {
      const double draw = rng_.Exponential(rate);
      if (draw <= kHour) return (t + draw) - now;
    }
    t += kHour;
  }
  return t - now;  // Effectively never (10 simulated years).
}

double SpotMarket::SampleStartupDelay() {
  return rng_.Uniform(config_.vm_startup_min_sec, config_.vm_startup_max_sec);
}

double SpotMarket::SpotPriceMultiplier(net::Continent continent,
                                       double now) const {
  const uint64_t hour_index = static_cast<uint64_t>(now / kHour);
  uint64_t h = hour_index * 0x9e3779b97f4a7c15ULL +
               (static_cast<uint64_t>(continent) + 1) * 0xc2b2ae3d27d4eb4fULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  const double unit = static_cast<double>(h % 10000) / 10000.0;  // [0,1)
  const double jitter = config_.price_jitter * (2.0 * unit - 1.0);
  const double local = LocalHour(continent, now);
  const bool daytime = local >= kDayStartHour && local < kDayEndHour;
  const double diurnal =
      daytime ? config_.diurnal_swing : -config_.diurnal_swing;
  return 1.0 + diurnal + jitter;
}

}  // namespace hivesim::cloud
