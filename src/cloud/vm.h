#ifndef HIVESIM_CLOUD_VM_H_
#define HIVESIM_CLOUD_VM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/pricing.h"
#include "cloud/spot_market.h"
#include "net/location.h"
#include "sim/simulator.h"

namespace hivesim::cloud {

/// Lifecycle states of a rented VM.
enum class VmState : uint8_t {
  kPending,       ///< Created, not yet started.
  kProvisioning,  ///< Start requested; waiting for boot + stack deploy.
  kRunning,
  kInterrupted,   ///< Spot capacity reclaimed by the provider.
  kStopped,       ///< Stopped by us.
};

std::string_view VmStateName(VmState s);

/// One rented (or on-prem) machine, driven by the simulator clock.
///
/// Spot VMs get an interruption time drawn from the `SpotMarket`; with
/// `auto_restart` a replacement is provisioned immediately (the paper
/// assumes "a new VM can be spun up fast enough", Section 7), and
/// `on_running` fires again when the replacement is up. Billed hours
/// accumulate only while running, across all incarnations.
class VmInstance {
 public:
  struct Config {
    VmTypeId type = VmTypeId::kGcT4;
    net::SiteId site = 0;
    bool spot = true;
    /// Replace the VM automatically after a spot interruption.
    bool auto_restart = false;
    /// If false, the VM never gets interrupted even when spot (used by
    /// the throughput experiments, which the paper ran uninterrupted).
    bool interruptible = true;
  };

  VmInstance(sim::Simulator* sim, SpotMarket* market, net::Continent continent,
             Config config);

  VmInstance(const VmInstance&) = delete;
  VmInstance& operator=(const VmInstance&) = delete;

  /// Requests provisioning; `on_running` fires after the startup delay.
  void Start();
  /// Stops the VM (end of experiment). Idempotent.
  void Stop();

  VmState state() const { return state_; }
  const Config& config() const { return config_; }
  /// Total hours in kRunning, for billing.
  double BilledHours() const;
  /// Times this VM was interrupted.
  int interruptions() const { return interruptions_; }

  /// Fired every time the VM (or its replacement) reaches kRunning.
  std::function<void()> on_running;
  /// Fired when a spot interruption kills the VM.
  std::function<void()> on_interrupted;

 private:
  void EnterRunning();
  void EnterInterrupted();

  sim::Simulator* sim_;
  SpotMarket* market_;
  net::Continent continent_;
  Config config_;
  VmState state_ = VmState::kPending;
  double running_since_ = 0;
  double billed_seconds_ = 0;
  int interruptions_ = 0;
  sim::EventId interruption_event_ = 0;
  bool has_interruption_event_ = false;
};

}  // namespace hivesim::cloud

#endif  // HIVESIM_CLOUD_VM_H_
