#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "fuzz/fuzz.h"
#include "fuzz/internal.h"
#include "models/model_zoo.h"

namespace hivesim::fuzz {

namespace {

using scenario::ScenarioPack;

/// Greedy one-at-a-time event removal over one section; keeps a removal
/// whenever the candidate still fails. Deterministic: events are tried
/// front to back, and the index only advances past survivors.
template <typename T>
bool RemovePass(ScenarioPack& pack, std::vector<T> ScenarioPack::*section,
                const OracleFn& still_fails) {
  bool removed = false;
  size_t i = 0;
  while (i < (pack.*section).size()) {
    ScenarioPack candidate = pack;
    auto& events = candidate.*section;
    events.erase(events.begin() + static_cast<long>(i));
    if (still_fails(candidate)) {
      pack = std::move(candidate);
      removed = true;
    } else {
      ++i;
    }
  }
  return removed;
}

/// One sweep of removal over every section in canonical order, repeated
/// until a full sweep removes nothing.
bool RemovalFixpoint(ScenarioPack& pack, const OracleFn& still_fails) {
  bool any = false;
  bool removed = true;
  while (removed) {
    removed = false;
    removed |= RemovePass(pack, &ScenarioPack::wan, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::contention, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::diurnal_wan, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::spot_storms, still_fails);
    removed |=
        RemovePass(pack, &ScenarioPack::diurnal_preemption, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::zone_storms, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::crashes, still_fails);
    removed |= RemovePass(pack, &ScenarioPack::crash_storms, still_fails);
    any |= removed;
  }
  return any;
}

/// Fixed absolute grids for parameter bisection. The grids never depend
/// on the value being shrunk — that is what makes shrinking idempotent:
/// re-shrinking a minimized pack walks the exact same probe sequence and
/// lands on the exact same grid points.
std::vector<double> FracGrid64() {
  std::vector<double> grid;
  for (int k = 0; k <= 64; ++k) grid.push_back(k / 64.0);
  return grid;
}
std::vector<double> DurationGrid64() {
  std::vector<double> grid;
  for (int k = 1; k <= 64; ++k) grid.push_back(k / 64.0);  // no 0: windows
  return grid;                                             // need extent
}
std::vector<double> FactorGrid16() {
  std::vector<double> grid;
  for (int j = 0; j <= 16; ++j) grid.push_back(j / 16.0);
  return grid;
}

/// Lower-bound search: the smallest grid index whose substitution still
/// fails (-1 if none). For a monotone predicate this is the classic
/// bisection; for a non-monotone one it is still a deterministic choice.
int GridSearch(int lo, int hi, const std::function<bool(int)>& fails) {
  int best = -1;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      best = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

/// Bisects one numeric parameter over `grid`, keeping the smallest value
/// that still fails. Returns true when the pack changed.
bool Tune(ScenarioPack& pack, const OracleFn& still_fails,
          const std::vector<double>& grid, double current,
          const std::function<void(ScenarioPack&, double)>& set) {
  const int best = GridSearch(
      0, static_cast<int>(grid.size()) - 1, [&](int index) {
        ScenarioPack candidate = pack;
        set(candidate, grid[index]);
        return still_fails(candidate);
      });
  if (best < 0 || grid[static_cast<size_t>(best)] == current) return false;
  set(pack, grid[static_cast<size_t>(best)]);
  return true;
}

/// Bisects a fractional window in place: duration first (smallest failing
/// 1/64 step), then start (earliest failing 1/64 step). Absolute-second
/// windows are left alone — their natural grid depends on the run
/// duration, which the pack alone does not know.
bool TuneWindow(ScenarioPack& pack, const OracleFn& still_fails,
                const std::function<scenario::TimeWindow&(ScenarioPack&)>&
                    window_of) {
  if (!window_of(pack).frac) return false;
  static const std::vector<double> starts = FracGrid64();
  static const std::vector<double> durations = DurationGrid64();
  bool changed = false;
  changed |= Tune(pack, still_fails, durations, window_of(pack).duration,
                  [&](ScenarioPack& p, double v) {
                    window_of(p).duration = v;
                  });
  changed |= Tune(pack, still_fails, starts, window_of(pack).start,
                  [&](ScenarioPack& p, double v) { window_of(p).start = v; });
  return changed;
}

bool TuneList(ScenarioPack& pack, const OracleFn& still_fails,
              const std::vector<double>& values, double current,
              const std::function<void(ScenarioPack&, double)>& set) {
  // Small unordered option sets ("restart never / after 1 / 5 / 10
  // minutes"): first listed value that still fails wins.
  for (const double value : values) {
    if (value == current) break;  // already at (or before) this preference
    ScenarioPack candidate = pack;
    set(candidate, value);
    if (still_fails(candidate)) {
      set(pack, value);
      return true;
    }
  }
  return false;
}

bool ParamPass(ScenarioPack& pack, const OracleFn& still_fails) {
  static const std::vector<double> frac = FracGrid64();
  static const std::vector<double> factor = FactorGrid16();
  static const std::vector<double> rtt = {0, 25, 50, 100, 200, 400};
  static const std::vector<double> jobs = {2, 3, 4, 8, 16};
  static const std::vector<double> restart = {-1, 60, 300, 600};
  static const std::vector<double> counts = {1, 2, 3, 4};
  static const std::vector<double> fraction = {0, 0.25, 0.5, 0.75, 1.0};
  bool changed = false;

  for (size_t i = 0; i < pack.wan.size(); ++i) {
    changed |= TuneWindow(
        pack, still_fails,
        [i](ScenarioPack& p) -> scenario::TimeWindow& {
          return p.wan[i].window;
        });
    changed |= Tune(pack, still_fails, factor, pack.wan[i].bandwidth_factor,
                    [i](ScenarioPack& p, double v) {
                      p.wan[i].bandwidth_factor = v;
                    });
    changed |= Tune(pack, still_fails, rtt, pack.wan[i].extra_rtt_ms,
                    [i](ScenarioPack& p, double v) {
                      p.wan[i].extra_rtt_ms = v;
                    });
  }
  for (size_t i = 0; i < pack.contention.size(); ++i) {
    changed |= TuneWindow(
        pack, still_fails,
        [i](ScenarioPack& p) -> scenario::TimeWindow& {
          return p.contention[i].window;
        });
    changed |= Tune(pack, still_fails, jobs,
                    static_cast<double>(pack.contention[i].jobs),
                    [i](ScenarioPack& p, double v) {
                      p.contention[i].jobs = static_cast<int>(v);
                    });
  }
  for (size_t i = 0; i < pack.diurnal_wan.size(); ++i) {
    for (size_t h = 0; h < pack.diurnal_wan[i].hourly_bandwidth_factor.size();
         ++h) {
      changed |= Tune(pack, still_fails, factor,
                      pack.diurnal_wan[i].hourly_bandwidth_factor[h],
                      [i, h](ScenarioPack& p, double v) {
                        p.diurnal_wan[i].hourly_bandwidth_factor[h] = v;
                      });
    }
  }
  for (size_t i = 0; i < pack.zone_storms.size(); ++i) {
    changed |= TuneWindow(
        pack, still_fails,
        [i](ScenarioPack& p) -> scenario::TimeWindow& {
          return p.zone_storms[i].window;
        });
    changed |= Tune(pack, still_fails, fraction,
                    pack.zone_storms[i].crash_fraction,
                    [i](ScenarioPack& p, double v) {
                      p.zone_storms[i].crash_fraction = v;
                    });
    changed |= TuneList(pack, still_fails, restart,
                        pack.zone_storms[i].restart_after_sec,
                        [i](ScenarioPack& p, double v) {
                          p.zone_storms[i].restart_after_sec = v;
                        });
  }
  for (size_t i = 0; i < pack.crashes.size(); ++i) {
    if (pack.crashes[i].frac) {
      changed |= Tune(pack, still_fails, frac, pack.crashes[i].at,
                      [i](ScenarioPack& p, double v) { p.crashes[i].at = v; });
    }
    changed |= TuneList(pack, still_fails, restart,
                        pack.crashes[i].restart_after_sec,
                        [i](ScenarioPack& p, double v) {
                          p.crashes[i].restart_after_sec = v;
                        });
  }
  for (size_t i = 0; i < pack.crash_storms.size(); ++i) {
    changed |= TuneWindow(
        pack, still_fails,
        [i](ScenarioPack& p) -> scenario::TimeWindow& {
          return p.crash_storms[i].window;
        });
    changed |= Tune(pack, still_fails, counts,
                    static_cast<double>(pack.crash_storms[i].crashes),
                    [i](ScenarioPack& p, double v) {
                      p.crash_storms[i].crashes = static_cast<int>(v);
                    });
    changed |= TuneList(pack, still_fails, restart,
                        pack.crash_storms[i].restart_after_sec,
                        [i](ScenarioPack& p, double v) {
                          p.crash_storms[i].restart_after_sec = v;
                        });
  }
  return changed;
}

}  // namespace

ScenarioPack ShrinkPack(const ScenarioPack& pack, const OracleFn& still_fails) {
  // Shrinking is only meaningful from a failing pack; a passing input is
  // returned untouched (and keeps ShrinkPack idempotent on any input).
  if (!still_fails(pack)) return pack;
  ScenarioPack shrunk = pack;
  bool changed = true;
  // The bound is a safety net against pathological oracle landscapes
  // where two parameters keep re-tuning each other; real shrinks reach
  // the fixpoint in two or three rounds.
  for (int round = 0; changed && round < 16; ++round) {
    changed = RemovalFixpoint(shrunk, still_fails);
    changed |= ParamPass(shrunk, still_fails);
  }
  return shrunk;
}

ScenarioPack ShrinkCase(const FuzzCase& fuzz_case, const FuzzOptions& options,
                        const Verdict& verdict) {
  const OracleFn still_fails = [&](const ScenarioPack& candidate) {
    FuzzCase probe = fuzz_case;
    probe.pack = candidate;
    const Verdict v = RunOracles(probe, options);
    return v.ran && !v.ok && v.oracle == verdict.oracle;
  };
  ScenarioPack minimized = ShrinkPack(fuzz_case.pack, still_fails);
  minimized.description =
      "minimized reproducer (hivesim fuzz, oracle " + verdict.oracle + ")";
  minimized.repro.present = true;
  minimized.repro.fleet = fuzz_case.fleet_spec;
  minimized.repro.seed = fuzz_case.world_seed;
  minimized.repro.duration_sec = fuzz_case.sim_duration_sec;
  minimized.repro.target_batch_size = fuzz_case.target_batch_size;
  minimized.repro.model =
      std::string(models::ModelName(models::ModelId::kConvNextLarge));
  minimized.repro.oracle = verdict.oracle;
  return minimized;
}

}  // namespace hivesim::fuzz
