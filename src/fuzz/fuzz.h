#ifndef HIVESIM_FUZZ_FUZZ_H_
#define HIVESIM_FUZZ_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/cluster.h"
#include "scenario/scenario.h"

namespace hivesim::fuzz {

/// The chaos fuzzer: seeded random scenario packs against randomized
/// fleets, every world run twice, the full oracle set checked, and
/// failures deterministically shrunk to minimal reproducer packs.
/// Everything here is a pure function of (options.seed, iteration) —
/// the same campaign always generates the same cases, reaches the same
/// verdicts, and shrinks to byte-identical reproducer files
/// (docs/SCENARIOS.md describes the oracles and shrinking semantics).

struct FuzzOptions {
  uint64_t seed = 1;
  /// Cases per campaign. This is the deterministic contract; the wall
  /// budget below only stops *early* (and marks the result truncated).
  int runs = 20;
  /// Host-wall-clock safety stop in seconds; 0 = none. Campaigns that
  /// hit it are reproducible only up to the case reached.
  double budget_sec = 0;
  /// Upper bound on events per generated pack.
  int max_events = 6;
  /// Simulated duration of each fuzz world.
  double sim_duration_sec = 1800;
  int target_batch_size = 4096;
  /// Where minimized reproducer packs are written; empty = don't write.
  std::string repro_dir;
  /// Test-only hook: perturbs the second run's chaos fingerprint for
  /// any case whose pack contains both a full partition and a crash,
  /// simulating an ordering-determinism bug so the find-and-shrink
  /// pipeline can be exercised end to end.
  bool inject_ordering_bug = false;
  /// Shrink failing cases (off = report the raw generated pack).
  bool shrink = true;
};

/// One generated world: a fleet plus the pack to compile against it.
struct FuzzCase {
  core::ClusterSpec cluster;
  std::string fleet_spec;  ///< "gc-us:2,aws:1" (reproducer `repro.fleet`).
  uint64_t world_seed = 1;
  double sim_duration_sec = 1800;
  int target_batch_size = 4096;
  scenario::ScenarioPack pack;
};

/// Oracle verdict for one case.
struct Verdict {
  bool ok = true;
  /// False when the world itself errored identically in both runs (the
  /// case is rejected, not failed — e.g. an OOM fleet).
  bool ran = true;
  std::string oracle;  ///< Failing oracle id ("chaos-fingerprint", ...).
  std::string detail;
};

/// Deterministically generates case `iteration` of the campaign.
/// Generated packs are *canonical*: per-pair WAN/contention windows
/// sorted and non-overlapping, at most one diurnal curve per pair (and
/// then no interval windows on it), crashes sorted by time, zones drawn
/// from the fleet's continents, peer indices in range.
FuzzCase GenerateCase(const FuzzOptions& options, int iteration);

/// Checks the canonical-form invariants above plus compile + schedule
/// validation; the property tests run this over many seeds.
Status CheckCanonical(const FuzzCase& fuzz_case);

/// Runs the case's world twice and checks the oracle set:
///   - same-seed byte identity: chaos trace fingerprint + applied-event
///     log, telemetry trace JSON, metrics JSON, and the result digest
///     (every RunStats/cost number via round-tripping formatting),
///   - trainer counter reconciliation: epochs == epoch_stats size and
///     sum(epoch samples) == total_samples,
///   - monotone sim clock, observed by a probe event rescheduling
///     itself across the whole run,
///   - no watchdog deadlock: the simulation reaches the configured
///     duration and the run returns,
///   - event-pool leak check: after draining post-run events the
///     simulator's pending count returns to zero, and both runs fire
///     the exact same number of events.
Verdict RunOracles(const FuzzCase& fuzz_case, const FuzzOptions& options);

/// The failure predicate shrinking minimizes against: true = the pack
/// still fails (same oracle family) for this case's fleet/seed.
using OracleFn = std::function<bool(const scenario::ScenarioPack&)>;

/// Deterministic shrink: greedy event removal to a fixpoint in canonical
/// section order, then parameter bisection over fixed absolute grids
/// (window durations on a 1/64-of-run grid, bandwidth factors on a 1/16
/// grid, ...), repeated until nothing changes. The grids are anchored
/// to constants — not to current values — so shrinking is idempotent:
/// Shrink(Shrink(x)) == Shrink(x), and the same seed always produces
/// the same minimal pack.
scenario::ScenarioPack ShrinkPack(const scenario::ScenarioPack& pack,
                                  const OracleFn& still_fails);

/// Shrinks `fuzz_case`'s pack against the real oracle set and stamps
/// the reproducer metadata (fleet, seed, duration, tbs, oracle id).
scenario::ScenarioPack ShrinkCase(const FuzzCase& fuzz_case,
                                  const FuzzOptions& options,
                                  const Verdict& verdict);

struct CampaignResult {
  int cases = 0;     ///< Generated.
  int ran = 0;       ///< Worlds that actually trained.
  int rejected = 0;  ///< Worlds that errored identically (vacuous cases).
  int failures = 0;  ///< Oracle failures.
  bool truncated = false;  ///< Wall budget hit before `runs` cases.
  std::vector<std::string> failure_oracles;  ///< One id per failure.
  std::vector<std::string> repro_files;      ///< Written reproducers.
  /// FNV-1a over every verdict and minimized reproducer byte — the
  /// campaign's reproducibility handle (same seed => same digest).
  uint64_t digest = 0;
};

/// Runs the campaign. IOError only for unwritable repro files; oracle
/// failures are data, not errors.
Result<CampaignResult> RunCampaign(const FuzzOptions& options);

/// Loads a reproducer pack (requires its `repro` section), rebuilds the
/// world it describes, and re-runs the oracle set. `options` supplies
/// the test hooks only (injection flag); the world comes from the file.
Result<Verdict> ReplayScenarioFile(const std::string& path,
                                   const FuzzOptions& options);

}  // namespace hivesim::fuzz

#endif  // HIVESIM_FUZZ_FUZZ_H_
