#ifndef HIVESIM_FUZZ_INTERNAL_H_
#define HIVESIM_FUZZ_INTERNAL_H_

#include "scenario/scenario.h"

namespace hivesim::fuzz::internal {

/// Spec-level predicates the injected-ordering-bug test hook keys on
/// (exposed for the fuzzer's own unit tests).
bool PackHasFullPartition(const scenario::ScenarioPack& pack);
bool PackHasCrash(const scenario::ScenarioPack& pack);

}  // namespace hivesim::fuzz::internal

#endif  // HIVESIM_FUZZ_INTERNAL_H_
