#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "faults/chaos.h"
#include "fuzz/fuzz.h"
#include "fuzz/internal.h"
#include "telemetry/telemetry.h"

namespace hivesim::fuzz {

namespace {

/// Everything one world execution produced that the oracles compare.
struct WorldRun {
  Status status = Status::OK();
  uint64_t fingerprint = 0;
  std::string chaos_trace;
  std::string trace_json;
  std::string metrics_json;
  std::string digest;
  bool monotone = true;
  double end_now = 0;
  uint64_t events_fired = 0;
  size_t pending = 0;
  hivemind::RunStats stats;
};

/// Serializes every number a run produced through the round-tripping
/// JsonWriter formatter, so "byte-identical digest" means "bit-identical
/// doubles" — the strictest equality the oracle can ask for.
std::string ResultDigest(const core::ExperimentResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("duration_sec").Number(result.train.duration_sec);
  json.Key("total_samples").Number(result.train.total_samples);
  json.Key("throughput_sps").Number(result.train.throughput_sps);
  json.Key("local_throughput_sps").Number(result.train.local_throughput_sps);
  json.Key("avg_calc_sec").Number(result.train.avg_calc_sec);
  json.Key("avg_comm_sec").Number(result.train.avg_comm_sec);
  json.Key("granularity").Number(result.train.granularity);
  json.Key("epochs").Int(result.train.epochs);
  json.Key("epoch_stats").BeginArray();
  for (const hivemind::EpochStats& epoch : result.train.epoch_stats) {
    json.BeginArray();
    json.Number(epoch.calc_sec);
    json.Number(epoch.comm_sec);
    json.Number(epoch.samples);
    json.Int(epoch.peers);
    json.EndArray();
  }
  json.EndArray();
  json.Key("fleet_cost_per_hour").Number(result.fleet_cost_per_hour);
  json.Key("cost_per_million").Number(result.cost_per_million);
  json.Key("fleet_cost_per_hour_excl_data")
      .Number(result.fleet_cost_per_hour_excl_data);
  json.Key("cost_per_million_excl_data")
      .Number(result.cost_per_million_excl_data);
  json.Key("vms").Int(static_cast<int64_t>(result.usages.size()));
  json.EndObject();
  return json.ToString();
}

std::string ChaosTraceText(const faults::ChaosInjector& injector) {
  std::string text;
  for (const faults::ChaosInjector::TraceEntry& entry : injector.trace()) {
    JsonWriter at;
    at.Number(entry.at_sec);
    text += StrCat(at.ToString(), " ", entry.event, "\n");
  }
  return text;
}

core::ExperimentConfig ConfigOf(const FuzzCase& fuzz_case) {
  core::ExperimentConfig config;
  config.model = models::ModelId::kConvNextLarge;
  config.target_batch_size = fuzz_case.target_batch_size;
  config.duration_sec = fuzz_case.sim_duration_sec;
  config.seed = fuzz_case.world_seed;
  // The sweep engine's chaos hardening: partitions degrade instead of
  // stalling the run (fuzz worlds are chaotic by construction).
  config.averaging_round_timeout_sec = 120;
  config.averaging_retry_base_sec = 1.0;
  config.averaging_max_retries = 2;
  return config;
}

/// One full world execution with private telemetry sinks. `second` is
/// only consulted by the injected-ordering-bug test hook.
WorldRun DoRun(const FuzzCase& fuzz_case, const FuzzOptions& options,
               bool second) {
  WorldRun out;
  telemetry::TraceRecorder trace;
  telemetry::MetricsRegistry metrics;
  telemetry::Telemetry::ScopedSinks sinks(&trace, &metrics);

  const core::ExperimentConfig config = ConfigOf(fuzz_case);
  auto world = core::BuildExperimentWorld(fuzz_case.cluster, config);
  if (!world.ok()) {
    out.status = world.status();
    return out;
  }
  const scenario::FleetView fleet =
      core::FleetViewOf((*world)->cluster, (*world)->topology);
  auto schedule =
      scenario::Compile(fuzz_case.pack, fleet, config.duration_sec);
  if (!schedule.ok()) {
    out.status = schedule.status();
    return out;
  }
  faults::ChaosInjector injector(&(*world)->sim, &(*world)->topology,
                                 (*world)->network.get(), config.seed);
  injector.AttachTrainer((*world)->trainer.get());
  const Status armed = injector.Arm(*schedule);
  if (!armed.ok()) {
    out.status = armed;
    return out;
  }

  // Monotone-clock probes: 64 checkpoints across the run, each asserting
  // the clock never moved backwards since the previous one.
  struct ProbeState {
    double last = 0;
    bool monotone = true;
  };
  auto probe = std::make_shared<ProbeState>();
  sim::Simulator* sim = &(*world)->sim;
  for (int k = 1; k <= 64; ++k) {
    sim->ScheduleAt(config.duration_sec * k / 64.0, [probe, sim] {
      if (sim->Now() + 1e-12 < probe->last) probe->monotone = false;
      probe->last = sim->Now();
    });
  }

  auto result = core::CompleteExperiment(**world, config);
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.monotone = probe->monotone;
  out.end_now = sim->Now();
  out.events_fired = sim->events_fired();
  out.pending = sim->pending();
  out.fingerprint = injector.TraceFingerprint();
  if (second && options.inject_ordering_bug &&
      internal::PackHasFullPartition(fuzz_case.pack) &&
      internal::PackHasCrash(fuzz_case.pack)) {
    out.fingerprint ^= 1;
  }
  out.chaos_trace = ChaosTraceText(injector);
  out.digest = ResultDigest(*result);
  out.stats = result->train;
  out.trace_json = trace.ToChromeJson();
  out.metrics_json = metrics.ToJson();
  return out;
}

Verdict Fail(std::string oracle, std::string detail) {
  Verdict verdict;
  verdict.ok = false;
  verdict.oracle = std::move(oracle);
  verdict.detail = std::move(detail);
  return verdict;
}

}  // namespace

namespace internal {

bool PackHasFullPartition(const scenario::ScenarioPack& pack) {
  for (const scenario::WanSpec& wan : pack.wan) {
    if (wan.bandwidth_factor == 0.0) return true;
  }
  return false;
}

bool PackHasCrash(const scenario::ScenarioPack& pack) {
  return !pack.crashes.empty() || !pack.crash_storms.empty();
}

}  // namespace internal

Verdict RunOracles(const FuzzCase& fuzz_case, const FuzzOptions& options) {
  const WorldRun a = DoRun(fuzz_case, options, /*second=*/false);
  const WorldRun b = DoRun(fuzz_case, options, /*second=*/true);

  if (!a.status.ok() || !b.status.ok()) {
    if (a.status.ToString() == b.status.ToString()) {
      // The world itself is invalid (e.g. an OOM fleet) and said so
      // identically twice: a vacuous case, not an oracle failure.
      Verdict verdict;
      verdict.ran = false;
      verdict.detail = a.status.ToString();
      return verdict;
    }
    return Fail("status-divergence",
                StrCat("run1: ", a.status.ToString(),
                       " run2: ", b.status.ToString()));
  }

  // Byte-identity oracles first, most specific signal first: the chaos
  // fingerprint pins injector-event ordering, the trace pins everything
  // the simulation logged, the digest pins every result number.
  if (a.fingerprint != b.fingerprint) {
    return Fail(
        "chaos-fingerprint",
        StrFormat("%016llx != %016llx",
                  static_cast<unsigned long long>(a.fingerprint),
                  static_cast<unsigned long long>(b.fingerprint)));
  }
  if (a.chaos_trace != b.chaos_trace) {
    return Fail("chaos-trace", "applied-event logs differ between runs");
  }
  if (a.trace_json != b.trace_json) {
    return Fail("telemetry-trace", "trace JSON differs between runs");
  }
  if (a.metrics_json != b.metrics_json) {
    return Fail("metrics", "metrics JSON differs between runs");
  }
  if (a.digest != b.digest) {
    return Fail("result-digest",
                StrCat("run1: ", a.digest, " run2: ", b.digest));
  }
  if (a.events_fired != b.events_fired || a.pending != b.pending) {
    return Fail("event-pool",
                StrCat("fired/pending ", a.events_fired, "/", a.pending,
                       " != ", b.events_fired, "/", b.pending));
  }

  // Single-run invariants (checked on run 1; runs are identical by now).
  if (a.stats.epochs !=
      static_cast<int>(a.stats.epoch_stats.size())) {
    return Fail("reconcile-epochs",
                StrCat("epochs=", a.stats.epochs, " but ",
                       a.stats.epoch_stats.size(), " epoch records"));
  }
  double samples = 0;
  for (const hivemind::EpochStats& epoch : a.stats.epoch_stats) {
    samples += epoch.samples;
  }
  const double tolerance =
      1e-6 * std::max(1.0, std::fabs(a.stats.total_samples));
  if (std::fabs(samples - a.stats.total_samples) > tolerance) {
    return Fail("reconcile-samples",
                StrCat("epoch samples sum to ", samples, " but run counted ",
                       a.stats.total_samples));
  }
  if (!a.monotone || !b.monotone) {
    return Fail("monotone-clock", "simulation clock moved backwards");
  }
  if (a.end_now + 1e-9 < fuzz_case.sim_duration_sec) {
    return Fail("deadlock",
                StrCat("run ended at t=", a.end_now, " before duration ",
                       fuzz_case.sim_duration_sec));
  }
  return Verdict{};
}

Result<Verdict> ReplayScenarioFile(const std::string& path,
                                   const FuzzOptions& options) {
  scenario::ScenarioPack pack;
  HIVESIM_ASSIGN_OR_RETURN(pack,
                           scenario::LoadScenarioFile(path));
  if (!pack.repro.present) {
    return Status::InvalidArgument(
        StrCat(path, ": pack has no `repro` section (replay needs the "
                     "fleet/seed context `hivesim fuzz` writes)"));
  }
  const std::string conv =
      std::string(models::ModelName(models::ModelId::kConvNextLarge));
  if (pack.repro.model != conv) {
    return Status::InvalidArgument(
        StrCat(path, ": replay supports only the ", conv, " model, got '",
               pack.repro.model, "'"));
  }
  FuzzCase fuzz_case;
  HIVESIM_ASSIGN_OR_RETURN(fuzz_case.cluster,
                           core::ParseFleetSpec(pack.repro.fleet));
  fuzz_case.fleet_spec = pack.repro.fleet;
  fuzz_case.world_seed = pack.repro.seed;
  fuzz_case.sim_duration_sec = pack.repro.duration_sec;
  fuzz_case.target_batch_size = pack.repro.target_batch_size;
  fuzz_case.pack = pack;
  if (fuzz_case.sim_duration_sec <= 0) {
    return Status::InvalidArgument(
        StrCat(path, ": repro duration must be positive"));
  }
  if (fuzz_case.target_batch_size <= 0) {
    return Status::InvalidArgument(
        StrCat(path, ": repro target batch size must be positive"));
  }
  return RunOracles(fuzz_case, options);
}

}  // namespace hivesim::fuzz
