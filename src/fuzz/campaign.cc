#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>

#include "common/host_clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "fuzz/fuzz.h"
#include "models/model_zoo.h"

namespace hivesim::fuzz {

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void Fold(uint64_t* digest, std::string_view bytes) {
  for (const char c : bytes) {
    *digest ^= static_cast<unsigned char>(c);
    *digest *= kFnvPrime;
  }
}

Status WriteRepro(const std::string& dir, const scenario::ScenarioPack& pack,
                  std::string* path_out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(dir), ec);
  if (ec) {
    return Status::IOError(StrCat("cannot create ", dir, ": ", ec.message()));
  }
  const fs::path path = fs::path(dir) / (pack.name + ".json");
  std::ofstream out(path, std::ios::binary);
  if (out) out << scenario::ScenarioToJson(pack) << "\n";
  if (!out) {
    return Status::IOError(StrCat("cannot write ", path.string()));
  }
  *path_out = path.string();
  return Status::OK();
}

}  // namespace

Result<CampaignResult> RunCampaign(const FuzzOptions& options) {
  if (options.runs < 1) {
    return Status::InvalidArgument("fuzz campaign needs at least one run");
  }
  if (options.max_events < 1) {
    return Status::InvalidArgument("fuzz max_events must be at least 1");
  }
  if (options.sim_duration_sec <= 0) {
    return Status::InvalidArgument("fuzz sim duration must be positive");
  }
  CampaignResult result;
  uint64_t digest = kFnvBasis;
  const double start_sec = HostClock::Seconds();

  for (int iteration = 0; iteration < options.runs; ++iteration) {
    if (options.budget_sec > 0 &&
        HostClock::Seconds() - start_sec > options.budget_sec) {
      result.truncated = true;
      break;
    }
    const FuzzCase fuzz_case = GenerateCase(options, iteration);
    ++result.cases;
    Fold(&digest, fuzz_case.pack.name);
    Fold(&digest, fuzz_case.fleet_spec);

    // A generator that emits a non-canonical pack is itself a bug the
    // campaign must surface — it cannot be shrunk (shrinking runs the
    // world oracles, not the form checker), only reported.
    const Status canonical = CheckCanonical(fuzz_case);
    if (!canonical.ok()) {
      ++result.failures;
      result.failure_oracles.push_back("canonical-form");
      Fold(&digest, "canonical-form");
      Fold(&digest, canonical.ToString());
      HIVESIM_LOG(Warning) << "fuzz case " << fuzz_case.pack.name
                        << " is non-canonical: " << canonical.ToString();
      continue;
    }

    const Verdict verdict = RunOracles(fuzz_case, options);
    if (!verdict.ran) {
      ++result.rejected;
      Fold(&digest, "rejected");
      Fold(&digest, verdict.detail);
      continue;
    }
    ++result.ran;
    if (verdict.ok) {
      Fold(&digest, "ok");
      continue;
    }

    ++result.failures;
    result.failure_oracles.push_back(verdict.oracle);
    Fold(&digest, verdict.oracle);
    Fold(&digest, verdict.detail);
    HIVESIM_LOG(Warning) << "fuzz case " << fuzz_case.pack.name
                      << " failed oracle " << verdict.oracle << ": "
                      << verdict.detail;

    scenario::ScenarioPack minimized =
        options.shrink ? ShrinkCase(fuzz_case, options, verdict)
                       : [&] {
                           scenario::ScenarioPack pack = fuzz_case.pack;
                           pack.repro.present = true;
                           pack.repro.fleet = fuzz_case.fleet_spec;
                           pack.repro.seed = fuzz_case.world_seed;
                           pack.repro.duration_sec =
                               fuzz_case.sim_duration_sec;
                           pack.repro.target_batch_size =
                               fuzz_case.target_batch_size;
                           pack.repro.model = std::string(
                               models::ModelName(
                                   models::ModelId::kConvNextLarge));
                           pack.repro.oracle = verdict.oracle;
                           return pack;
                         }();
    const std::string bytes = scenario::ScenarioToJson(minimized);
    Fold(&digest, bytes);
    if (!options.repro_dir.empty()) {
      std::string path;
      HIVESIM_RETURN_IF_ERROR(WriteRepro(options.repro_dir, minimized, &path));
      result.repro_files.push_back(std::move(path));
      HIVESIM_LOG(Warning) << "wrote minimized reproducer "
                        << result.repro_files.back() << " ("
                        << minimized.NumEvents() << " events)";
    }
  }

  result.digest = digest;
  return result;
}

}  // namespace hivesim::fuzz
