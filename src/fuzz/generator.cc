#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/catalog.h"
#include "fuzz/fuzz.h"
#include "net/profiles.h"

namespace hivesim::fuzz {

namespace {

/// Sites a fuzz fleet may rent in, with the continent each lives on
/// (mirrors `core::FleetSiteAliases` minus the singleton on-prem
/// machines, which `ParseFleetSpec` rejects in counted groups).
struct SiteChoice {
  const char* alias;
  net::Continent continent;
};
constexpr SiteChoice kSites[] = {
    {"gc-us", net::Continent::kUs},   {"gc-eu", net::Continent::kEu},
    {"gc-asia", net::Continent::kAsia}, {"gc-aus", net::Continent::kAus},
    {"aws", net::Continent::kUs},     {"azure", net::Continent::kUs},
    {"lambda", net::Continent::kUs},
};
constexpr int kNumSites = static_cast<int>(sizeof(kSites) / sizeof(kSites[0]));

/// Shrink-friendly grids: every generated value sits on the same absolute
/// grids the shrinker bisects over (1/64 run fractions, 1/16 factors), so
/// minimized packs stay within the generated value space.
double FracGrid(Rng& rng, int lo, int hi) {
  return static_cast<double>(rng.UniformInt(lo, hi)) / 64.0;
}

/// Per-(site-pair) window allocation state. `cursor` is the run fraction
/// the next window may start at (keeps wan/contention windows on one pair
/// sorted and non-overlapping); `diurnal` locks the pair to its curve.
struct PairState {
  double cursor = 0;
  bool diurnal = false;
};

/// A window starting at or after `cursor`, on the 1/64 grid, advancing
/// the cursor past it (plus a 1/64 gap). Fails when the pair's timeline
/// is nearly used up.
bool AllocWindow(Rng& rng, double* cursor, scenario::TimeWindow* window) {
  if (*cursor > 0.85) return false;
  const double start = *cursor + FracGrid(rng, 0, 4);
  const double max_duration = 1.0 - start;
  if (max_duration < 1.0 / 64.0) return false;
  const int max_steps =
      std::min(8, static_cast<int>(max_duration * 64.0));
  const double duration = FracGrid(rng, 1, max_steps);
  window->start = start;
  window->duration = duration;
  window->frac = true;
  *cursor = start + duration + 1.0 / 64.0;
  return true;
}

std::pair<int, int> PickPair(Rng& rng, int num_sites) {
  if (num_sites < 2) return {0, 1};  // "$site1" clamps to the only site.
  const int a = static_cast<int>(rng.UniformInt(0, num_sites - 1));
  int b = static_cast<int>(rng.UniformInt(0, num_sites - 2));
  if (b >= a) ++b;
  return {std::min(a, b), std::max(a, b)};
}

scenario::SiteRef Ref(int index) {
  return {StrCat("$site", index)};
}

double PickRestart(Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return -1;
    case 1:
      return 300;
    default:
      return 600;
  }
}

void SortPack(scenario::ScenarioPack& pack) {
  std::stable_sort(pack.wan.begin(), pack.wan.end(),
                   [](const scenario::WanSpec& x, const scenario::WanSpec& y) {
                     return x.window.start < y.window.start;
                   });
  std::stable_sort(pack.contention.begin(), pack.contention.end(),
                   [](const scenario::ContentionSpec& x,
                      const scenario::ContentionSpec& y) {
                     return x.window.start < y.window.start;
                   });
  std::stable_sort(pack.zone_storms.begin(), pack.zone_storms.end(),
                   [](const scenario::ZoneStormSpec& x,
                      const scenario::ZoneStormSpec& y) {
                     return x.window.start < y.window.start;
                   });
  std::stable_sort(pack.crashes.begin(), pack.crashes.end(),
                   [](const scenario::CrashSpec& x,
                      const scenario::CrashSpec& y) { return x.at < y.at; });
  std::stable_sort(pack.crash_storms.begin(), pack.crash_storms.end(),
                   [](const scenario::CrashStormSpec& x,
                      const scenario::CrashStormSpec& y) {
                     return x.window.start < y.window.start;
                   });
}

/// A FleetView equivalent to what provisioning would produce: members in
/// group order with placeholder node ids (compile only needs order,
/// sites, and continents — good enough for canonical-form checking
/// without building a world).
scenario::FleetView SpecFleetView(const core::ClusterSpec& spec) {
  const net::Topology topology = net::StandardWorld();
  std::vector<scenario::FleetMember> members;
  net::NodeId next = 1;
  for (const core::VmGroup& group : spec.groups) {
    for (int i = 0; i < group.count; ++i) {
      members.push_back(
          {next++, group.site, topology.site(group.site).continent});
    }
  }
  return scenario::MakeFleetView(std::move(members));
}

Status WindowsSortedAndDisjoint(
    const std::map<std::string, std::vector<std::pair<double, double>>>&
        by_pair) {
  for (const auto& [pair, windows] : by_pair) {
    double last_end = -1;
    for (const auto& [start, end] : windows) {
      if (start < last_end) {
        return Status::InvalidArgument(
            StrCat("overlapping windows on pair ", pair));
      }
      last_end = end;
    }
  }
  return Status::OK();
}

std::string PairKey(const scenario::SiteRef& a, const scenario::SiteRef& b) {
  return a.text <= b.text ? StrCat(a.text, "|", b.text)
                          : StrCat(b.text, "|", a.text);
}

}  // namespace

FuzzCase GenerateCase(const FuzzOptions& options, int iteration) {
  const uint64_t case_seed =
      options.seed ^
      (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(iteration + 1));
  Rng rng(case_seed);

  FuzzCase fuzz_case;
  // Reproducer packs store the seed as a JSON number, so it must survive
  // a double round-trip: keep it in the 52-bit integer-exact range. (The
  // first fuzz campaign found this — a full 64-bit seed serialized as a
  // negative int64 and the strict parser refused its own reproducer.)
  fuzz_case.world_seed = case_seed & ((uint64_t{1} << 52) - 1);
  fuzz_case.sim_duration_sec = options.sim_duration_sec;
  fuzz_case.target_batch_size = options.target_batch_size;

  // --- Fleet: 1-3 distinct sites, 1-3 VMs each, at least 2 VMs. ---
  const int num_groups = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<int> chosen;
  while (static_cast<int>(chosen.size()) < num_groups) {
    const int pick = static_cast<int>(rng.UniformInt(0, kNumSites - 1));
    if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
      chosen.push_back(pick);
    }
  }
  std::vector<int> counts(chosen.size());
  int total = 0;
  for (size_t i = 0; i < chosen.size(); ++i) {
    counts[i] = static_cast<int>(rng.UniformInt(1, 3));
    total += counts[i];
  }
  if (total < 2) {
    counts[0] = 2;
    total = 2;
  }
  for (size_t i = 0; i < chosen.size(); ++i) {
    if (i) fuzz_case.fleet_spec += ",";
    fuzz_case.fleet_spec += StrCat(kSites[chosen[i]].alias, ":", counts[i]);
  }
  if (auto cluster = core::ParseFleetSpec(fuzz_case.fleet_spec);
      cluster.ok()) {
    fuzz_case.cluster = *cluster;
  }
  std::vector<net::Continent> continents;
  for (const int site : chosen) {
    if (std::find(continents.begin(), continents.end(),
                  kSites[site].continent) == continents.end()) {
      continents.push_back(kSites[site].continent);
    }
  }

  // --- Pack: up to max_events events over the section palette. ---
  scenario::ScenarioPack& pack = fuzz_case.pack;
  pack.name = StrFormat("fuzz-%016llx-%03d",
                        static_cast<unsigned long long>(case_seed), iteration);
  pack.description = "generated chaos fuzz case";

  std::map<std::pair<int, int>, PairState> pairs;
  std::map<net::Continent, double> zone_cursor;
  double storm_cursor = 0;

  const int num_events =
      static_cast<int>(rng.UniformInt(1, std::max(1, options.max_events)));
  for (int e = 0; e < num_events; ++e) {
    int kind = static_cast<int>(rng.UniformInt(0, 5));

    if (kind == 0 || kind == 1) {  // wan / contention window
      const std::pair<int, int> pair = PickPair(rng, num_groups);
      PairState& state = pairs[pair];
      scenario::TimeWindow window;
      if (state.diurnal || !AllocWindow(rng, &state.cursor, &window)) {
        kind = 4;  // pair timeline exhausted: degrade to a crash
      } else if (kind == 0) {
        scenario::WanSpec wan;
        wan.a = Ref(pair.first);
        wan.b = Ref(pair.second);
        wan.window = window;
        wan.bandwidth_factor =
            static_cast<double>(rng.UniformInt(0, 12)) / 16.0;
        const int rtt = static_cast<int>(rng.UniformInt(0, 3));
        wan.extra_rtt_ms = rtt == 0 ? 0 : 50.0 * (1 << (rtt - 1));
        const int when = static_cast<int>(rng.UniformInt(0, 3));
        wan.when = when == 2   ? scenario::When::kMultiSite
                   : when == 3 ? scenario::When::kSingleSite
                               : scenario::When::kAlways;
        pack.wan.push_back(std::move(wan));
      } else {
        scenario::ContentionSpec contention;
        contention.a = Ref(pair.first);
        contention.b = Ref(pair.second);
        contention.window = window;
        const int jobs[] = {2, 3, 4, 8};
        contention.jobs = jobs[rng.UniformInt(0, 3)];
        pack.contention.push_back(std::move(contention));
      }
    }

    if (kind == 2) {  // diurnal bandwidth curve (pair must be unused)
      const std::pair<int, int> pair = PickPair(rng, num_groups);
      PairState& state = pairs[pair];
      if (state.diurnal || state.cursor > 0) {
        kind = 4;
      } else {
        state.diurnal = true;
        scenario::DiurnalWanSpec diurnal;
        diurnal.a = Ref(pair.first);
        diurnal.b = Ref(pair.second);
        const int hours = static_cast<int>(rng.UniformInt(2, 6));
        for (int h = 0; h < hours; ++h) {
          diurnal.hourly_bandwidth_factor.push_back(
              static_cast<double>(rng.UniformInt(8, 16)) / 16.0);
        }
        diurnal.hourly_bandwidth_factor.back() =
            std::min(diurnal.hourly_bandwidth_factor.back(), 12.0 / 16.0);
        pack.diurnal_wan.push_back(std::move(diurnal));
      }
    }

    if (kind == 3) {  // zone-wide preemption storm (trainer-visible form)
      const net::Continent zone =
          continents[rng.UniformInt(0, continents.size() - 1)];
      scenario::TimeWindow window;
      if (!AllocWindow(rng, &zone_cursor[zone], &window)) {
        kind = 4;
      } else {
        scenario::ZoneStormSpec storm;
        storm.zone = zone;
        storm.window = window;
        // Hazard stays 1: fuzz worlds train fixed fleets with no
        // SpotMarket, and Arm() rejects hazard windows without one.
        storm.hazard_multiplier = 1.0;
        const double fractions[] = {0.25, 0.5, 1.0};
        storm.crash_fraction = fractions[rng.UniformInt(0, 2)];
        storm.restart_after_sec = PickRestart(rng);
        pack.zone_storms.push_back(std::move(storm));
      }
    }

    if (kind == 4) {  // scripted crash
      scenario::CrashSpec crash;
      crash.peer = static_cast<int>(rng.UniformInt(0, total - 1));
      crash.at = FracGrid(rng, 1, 60);
      crash.frac = true;
      crash.restart_after_sec = PickRestart(rng);
      pack.crashes.push_back(std::move(crash));
    }

    if (kind == 5) {  // randomized churn burst
      scenario::TimeWindow window;
      if (!AllocWindow(rng, &storm_cursor, &window)) {
        scenario::CrashSpec crash;
        crash.peer = static_cast<int>(rng.UniformInt(0, total - 1));
        crash.at = FracGrid(rng, 1, 60);
        crash.frac = true;
        crash.restart_after_sec = PickRestart(rng);
        pack.crashes.push_back(std::move(crash));
      } else {
        scenario::CrashStormSpec storm;
        const int selector = static_cast<int>(rng.UniformInt(0, 2));
        if (selector == 0) {
          storm.peers.kind = scenario::PeerSelector::Kind::kAll;
        } else if (selector == 1) {
          storm.peers.kind = scenario::PeerSelector::Kind::kAllButFirst;
        } else {
          storm.peers.kind = scenario::PeerSelector::Kind::kList;
          std::set<int> picks;
          const int want =
              static_cast<int>(rng.UniformInt(1, std::min(3, total)));
          while (static_cast<int>(picks.size()) < want) {
            picks.insert(static_cast<int>(rng.UniformInt(0, total - 1)));
          }
          storm.peers.list.assign(picks.begin(), picks.end());
        }
        storm.window = window;
        storm.crashes = static_cast<int>(rng.UniformInt(1, 3));
        storm.restart_after_sec = rng.Bernoulli(0.5) ? 600 : -1;
        pack.crash_storms.push_back(std::move(storm));
      }
    }
  }

  SortPack(pack);
  return fuzz_case;
}

Status CheckCanonical(const FuzzCase& fuzz_case) {
  const scenario::ScenarioPack& pack = fuzz_case.pack;
  if (fuzz_case.cluster.groups.empty()) {
    return Status::InvalidArgument("fuzz case has an empty fleet");
  }
  const scenario::FleetView fleet = SpecFleetView(fuzz_case.cluster);
  const int num_peers = static_cast<int>(fleet.members.size());

  // Hazard events need a SpotMarket, which fuzz worlds do not have.
  if (!pack.spot_storms.empty() || !pack.diurnal_preemption.empty()) {
    return Status::InvalidArgument("generated pack has spot-hazard events");
  }
  for (const scenario::ZoneStormSpec& storm : pack.zone_storms) {
    if (storm.hazard_multiplier != 1.0) {
      return Status::InvalidArgument("zone storm with hazard multiplier");
    }
  }

  // All generated windows are run fractions inside [0, 1].
  const auto check_window = [](const scenario::TimeWindow& w) -> Status {
    if (!w.frac) return Status::InvalidArgument("non-fractional window");
    if (w.start < 0 || w.duration <= 0 || w.start + w.duration > 1.0 + 1e-12) {
      return Status::InvalidArgument("window outside the run");
    }
    return Status::OK();
  };

  // Per-pair sorted + disjoint interval windows; diurnal pairs exclusive.
  std::map<std::string, std::vector<std::pair<double, double>>> by_pair;
  double last = -1;
  for (const scenario::WanSpec& wan : pack.wan) {
    HIVESIM_RETURN_IF_ERROR(check_window(wan.window));
    if (wan.window.start < last) {
      return Status::InvalidArgument("wan section not sorted by start");
    }
    last = wan.window.start;
    by_pair[PairKey(wan.a, wan.b)].push_back(
        {wan.window.start, wan.window.start + wan.window.duration});
  }
  last = -1;
  for (const scenario::ContentionSpec& contention : pack.contention) {
    HIVESIM_RETURN_IF_ERROR(check_window(contention.window));
    if (contention.window.start < last) {
      return Status::InvalidArgument("contention section not sorted");
    }
    last = contention.window.start;
    by_pair[PairKey(contention.a, contention.b)]
        .push_back({contention.window.start,
                    contention.window.start + contention.window.duration});
  }
  for (auto& [pair, windows] : by_pair) {
    std::sort(windows.begin(), windows.end());
  }
  HIVESIM_RETURN_IF_ERROR(WindowsSortedAndDisjoint(by_pair));
  std::set<std::string> diurnal_pairs;
  for (const scenario::DiurnalWanSpec& diurnal : pack.diurnal_wan) {
    const std::string key = PairKey(diurnal.a, diurnal.b);
    if (!diurnal_pairs.insert(key).second) {
      return Status::InvalidArgument(
          StrCat("two diurnal curves on pair ", key));
    }
    if (by_pair.count(key)) {
      return Status::InvalidArgument(
          StrCat("diurnal pair ", key, " also has interval windows"));
    }
    if (diurnal.hourly_bandwidth_factor.empty()) {
      return Status::InvalidArgument("empty diurnal curve");
    }
  }

  // Zones must exist in the fleet; storms sorted.
  last = -1;
  for (const scenario::ZoneStormSpec& storm : pack.zone_storms) {
    HIVESIM_RETURN_IF_ERROR(check_window(storm.window));
    if (storm.window.start < last) {
      return Status::InvalidArgument("zone_storms section not sorted");
    }
    last = storm.window.start;
    bool found = false;
    for (const scenario::FleetMember& member : fleet.members) {
      if (member.continent == storm.zone) found = true;
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("zone storm in continent ",
                 net::ContinentName(storm.zone), " with no fleet peers"));
    }
  }

  // Crashes sorted, peer indices in range.
  last = -1;
  for (const scenario::CrashSpec& crash : pack.crashes) {
    if (crash.at < last) {
      return Status::InvalidArgument("crashes section not sorted");
    }
    last = crash.at;
    if (crash.peer < 0 || crash.peer >= num_peers) {
      return Status::InvalidArgument(
          StrCat("crash peer ", crash.peer, " out of range"));
    }
  }
  last = -1;
  for (const scenario::CrashStormSpec& storm : pack.crash_storms) {
    HIVESIM_RETURN_IF_ERROR(check_window(storm.window));
    if (storm.window.start < last) {
      return Status::InvalidArgument("crash_storms section not sorted");
    }
    last = storm.window.start;
    for (const int peer : storm.peers.list) {
      if (peer < 0 || peer >= num_peers) {
        return Status::InvalidArgument(
            StrCat("crash storm peer ", peer, " out of range"));
      }
    }
  }

  // The pack must compile and validate against its own fleet, and
  // round-trip through the canonical serialization byte-stably.
  HIVESIM_RETURN_IF_ERROR(
      scenario::Compile(pack, fleet, fuzz_case.sim_duration_sec).status());
  const std::string json = scenario::ScenarioToJson(pack);
  scenario::ScenarioPack reparsed;
  HIVESIM_ASSIGN_OR_RETURN(reparsed,
                           scenario::ParseScenario(json));
  if (scenario::ScenarioToJson(reparsed) != json) {
    return Status::Internal("pack does not round-trip byte-stably");
  }
  return Status::OK();
}

}  // namespace hivesim::fuzz
