#include "telemetry/round_model.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/strings.h"

namespace hivesim::telemetry {

double CanonMicros(double value_us) {
  // Must match ToChromeJson's "%.6f" + json_parse's strtod exactly: this
  // round trip is what makes in-process analysis bit-identical to
  // post-hoc analysis of the written trace.
  const std::string text = StrFormat("%.6f", value_us);
  return std::strtod(text.c_str(), nullptr);
}

Result<TraceDataset> DatasetFromRecorder(const TraceRecorder& recorder) {
  TraceDataset dataset;
  dataset.lanes = recorder.lanes();
  dataset.events.reserve(recorder.events().size());
  for (const TraceRecorder::Event& e : recorder.events()) {
    CanonEvent canon;
    canon.instant = e.instant;
    canon.ts_us = CanonMicros(e.ts_sec * 1e6);
    canon.dur_us = e.instant ? 0.0 : CanonMicros(e.dur_sec * 1e6);
    canon.lane = dataset.lanes[static_cast<size_t>(e.lane)];
    canon.name = e.name;
    if (!e.args_json.empty()) {
      Result<JsonValue> args = ParseJson(e.args_json);
      if (!args.ok()) {
        return Status::InvalidArgument(
            StrCat("event '", e.name, "' has malformed args: ",
                   args.status().message()));
      }
      canon.args = std::move(args).value();
    }
    dataset.events.push_back(std::move(canon));
  }
  return dataset;
}

Result<TraceDataset> DatasetFromChromeJson(std::string_view json_text) {
  JsonValue doc;
  HIVESIM_ASSIGN_OR_RETURN(doc, ParseJson(json_text));
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument(
        "not a Chrome trace: missing traceEvents array");
  }
  TraceDataset dataset;
  std::map<int, size_t> lane_by_tid;
  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) {
      return Status::InvalidArgument("traceEvents entry is not an object");
    }
    const JsonValue* ph = ev.Find("ph");
    const std::string kind = ph != nullptr ? ph->StringOr("") : "";
    const int tid = static_cast<int>(
        ev.Find("tid") != nullptr ? ev.Find("tid")->NumberOr(-1) : -1);
    if (kind == "M") {
      const JsonValue* name = ev.Find("name");
      if (name == nullptr || name->StringOr("") != "thread_name") continue;
      const JsonValue* args = ev.Find("args");
      const JsonValue* lane =
          args != nullptr ? args->Find("name") : nullptr;
      if (lane == nullptr || !lane->is_string()) {
        return Status::InvalidArgument("thread_name metadata without name");
      }
      lane_by_tid.emplace(tid, dataset.lanes.size());
      dataset.lanes.push_back(lane->string_value);
      continue;
    }
    if (kind != "X" && kind != "i") continue;  // Unknown phases skipped.
    const auto lane_it = lane_by_tid.find(tid);
    if (lane_it == lane_by_tid.end()) {
      return Status::InvalidArgument(
          StrFormat("event references undeclared tid %d", tid));
    }
    CanonEvent canon;
    canon.instant = kind == "i";
    const JsonValue* ts = ev.Find("ts");
    if (ts == nullptr || !ts->is_number()) {
      return Status::InvalidArgument("event without numeric ts");
    }
    canon.ts_us = ts->number_value;
    if (!canon.instant) {
      const JsonValue* dur = ev.Find("dur");
      canon.dur_us = dur != nullptr ? dur->NumberOr(0) : 0;
    }
    canon.lane = dataset.lanes[lane_it->second];
    const JsonValue* name = ev.Find("name");
    canon.name = name != nullptr ? name->StringOr("") : "";
    if (const JsonValue* args = ev.Find("args")) canon.args = *args;
    dataset.events.push_back(std::move(canon));
  }
  return dataset;
}

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCalc: return "calc";
    case Phase::kMatchmakeWait: return "matchmake-wait";
    case Phase::kMatchmake: return "matchmake";
    case Phase::kFlow: return "flow";
    case Phase::kOverhead: return "overhead";
  }
  return "?";
}

namespace {

bool IsRunMarker(const CanonEvent& e) {
  return e.instant && e.lane == "trace" && e.name == "run-start";
}

int ArgInt(const JsonValue& args, const char* key, int fallback) {
  const JsonValue* v = args.Find(key);
  return v != nullptr ? static_cast<int>(v->NumberOr(fallback)) : fallback;
}

/// A candidate covering interval for the sweep, already clipped to the
/// window. `index` is the recorder-order position used for tie-breaks.
struct Cover {
  double start = 0;
  double end = 0;
  int index = -1;
};

/// Partitions [w0, w1]: slices covered by some interval get
/// `covered_phase` attributed to the covering interval with the latest
/// end (ties: earliest recorded); uncovered slices get
/// `uncovered_phase`. Appends merged segments to `out`.
void SweepWindow(double w0, double w1, const std::vector<Cover>& covers,
                 Phase covered_phase, Phase uncovered_phase,
                 std::vector<Segment>* out) {
  if (!(w1 > w0)) return;
  std::vector<double> cuts;
  cuts.reserve(2 + covers.size() * 2);
  cuts.push_back(w0);
  cuts.push_back(w1);
  for (const Cover& c : covers) {
    if (c.start > w0 && c.start < w1) cuts.push_back(c.start);
    if (c.end > w0 && c.end < w1) cuts.push_back(c.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = cuts[i];
    const double b = cuts[i + 1];
    const Cover* best = nullptr;
    for (const Cover& c : covers) {
      if (c.start > a || c.end < b || c.end <= c.start) continue;
      if (best == nullptr || c.end > best->end) best = &c;
      // Equal ends keep the earlier `best` (covers are recorder-ordered).
    }
    Segment seg;
    seg.start_us = a;
    seg.end_us = b;
    seg.phase = best != nullptr ? covered_phase : uncovered_phase;
    seg.flow = best != nullptr && covered_phase == Phase::kFlow
                   ? best->index
                   : -1;
    if (!out->empty() && out->back().end_us == a &&
        out->back().phase == seg.phase && out->back().flow == seg.flow) {
      out->back().end_us = b;
    } else {
      out->push_back(seg);
    }
  }
}

void AppendSegment(std::vector<Segment>* out, double start, double end,
                   Phase phase) {
  if (!(end > start)) return;
  if (!out->empty() && out->back().end_us == start &&
      out->back().phase == phase && out->back().flow == -1) {
    out->back().end_us = end;
    return;
  }
  Segment seg;
  seg.start_us = start;
  seg.end_us = end;
  seg.phase = phase;
  out->push_back(seg);
}

}  // namespace

Result<RoundModel> BuildRoundModel(const TraceDataset& dataset) {
  RoundModel model;
  const std::vector<CanonEvent>& events = dataset.events;

  // `hivesim run`/`fleet` record several simulations into one recorder,
  // each restarting at sim-time 0 behind a "run-start" marker. Events
  // are grouped by marker position so flows of run k can never be
  // matched against rounds of run k+1 by timestamp coincidence.
  std::vector<size_t> run_starts{0};
  for (size_t i = 1; i < events.size(); ++i) {
    if (IsRunMarker(events[i])) run_starts.push_back(i);
  }
  model.num_runs = static_cast<int>(run_starts.size());

  for (size_t r = 0; r < run_starts.size(); ++r) {
    const size_t begin = run_starts[r];
    const size_t end = r + 1 < run_starts.size() ? run_starts[r + 1]
                                                 : events.size();
    if (begin >= end) continue;

    double extent_min = events[begin].ts_us;
    double extent_max = events[begin].end_us();
    std::vector<Round> rounds;
    bool pending_comm = false;
    std::vector<std::pair<double, double>> matchmakes;
    std::vector<FlowRef> flows;
    std::vector<double> retry_ts;
    std::vector<double> degraded_ts;
    std::vector<std::pair<double, std::string>> chaos;

    for (size_t i = begin; i < end; ++i) {
      const CanonEvent& e = events[i];
      extent_min = std::min(extent_min, e.ts_us);
      extent_max = std::max(extent_max, e.end_us());
      if (e.lane == "trainer") {
        if (!e.instant && e.name == "calc") {
          if (pending_comm) rounds.pop_back();  // calc without comm.
          Round round;
          round.run = static_cast<int>(r);
          round.epoch = ArgInt(e.args, "epoch", -1);
          round.start_us = e.ts_us;
          round.calc_end_us = e.end_us();
          round.avg_start_us = round.calc_end_us;
          round.end_us = round.calc_end_us;
          rounds.push_back(std::move(round));
          pending_comm = true;
        } else if (!e.instant && e.name == "comm") {
          if (pending_comm) {
            rounds.back().end_us = std::max(rounds.back().calc_end_us,
                                            e.end_us());
            pending_comm = false;
          }
        } else if (!e.instant && e.name == "matchmake-wait") {
          if (!rounds.empty()) {
            Round& round = rounds.back();
            round.avg_start_us = std::min(
                std::max(e.end_us(), round.calc_end_us), round.end_us);
          }
        } else if (!e.instant && e.name == "matchmake") {
          matchmakes.emplace_back(e.ts_us, e.end_us());
        } else if (e.instant && e.name == "round-retry") {
          retry_ts.push_back(e.ts_us);
        } else if (e.instant && e.name == "round-degraded") {
          degraded_ts.push_back(e.ts_us);
        }
      } else if (e.lane == "net" && !e.instant) {
        int src = -1;
        int dst = -1;
        if (std::sscanf(e.name.c_str(), "flow %d->%d", &src, &dst) == 2) {
          FlowRef flow;
          flow.start_us = e.ts_us;
          flow.end_us = e.end_us();
          flow.src = src;
          flow.dst = dst;
          if (const JsonValue* bytes = e.args.Find("bytes")) {
            flow.bytes = bytes->NumberOr(0);
          }
          if (const JsonValue* zone = e.args.Find("src_zone")) {
            flow.src_zone = zone->StringOr("");
          }
          if (const JsonValue* zone = e.args.Find("dst_zone")) {
            flow.dst_zone = zone->StringOr("");
          }
          flow.link = !flow.src_zone.empty() && !flow.dst_zone.empty()
                          ? StrCat(flow.src_zone, "->", flow.dst_zone)
                          : StrFormat("node%d->node%d", src, dst);
          flows.push_back(std::move(flow));
        }
      } else if (e.lane == "chaos" && e.instant) {
        chaos.emplace_back(e.ts_us, e.name);
      }
    }
    if (pending_comm) rounds.pop_back();  // Trainer stopped mid-round.

    double run_modeled = 0;
    for (Round& round : rounds) {
      // Flows overlapping the communication window, clipped to it.
      std::vector<Cover> flow_covers;
      for (const FlowRef& flow : flows) {
        if (flow.end_us <= round.avg_start_us ||
            flow.start_us >= round.end_us) {
          continue;
        }
        FlowRef clipped = flow;
        clipped.start_us = std::max(flow.start_us, round.avg_start_us);
        clipped.end_us = std::min(flow.end_us, round.end_us);
        Cover cover;
        cover.start = clipped.start_us;
        cover.end = clipped.end_us;
        cover.index = static_cast<int>(round.flows.size());
        round.flows.push_back(std::move(clipped));
        flow_covers.push_back(cover);
      }
      std::vector<Cover> mm_covers;
      for (const auto& [mm_start, mm_end] : matchmakes) {
        if (mm_end <= round.calc_end_us || mm_start >= round.avg_start_us) {
          continue;
        }
        Cover cover;
        cover.start = std::max(mm_start, round.calc_end_us);
        cover.end = std::min(mm_end, round.avg_start_us);
        cover.index = static_cast<int>(mm_covers.size());
        mm_covers.push_back(cover);
      }

      AppendSegment(&round.critical, round.start_us, round.calc_end_us,
                    Phase::kCalc);
      SweepWindow(round.calc_end_us, round.avg_start_us, mm_covers,
                  Phase::kMatchmake, Phase::kMatchmakeWait,
                  &round.critical);
      SweepWindow(round.avg_start_us, round.end_us, flow_covers,
                  Phase::kFlow, Phase::kOverhead, &round.critical);

      for (const double ts : retry_ts) {
        if (ts >= round.start_us && ts < round.end_us) ++round.retries;
      }
      for (const double ts : degraded_ts) {
        if (ts >= round.start_us && ts < round.end_us) {
          round.degraded = true;
        }
      }
      for (const auto& [ts, name] : chaos) {
        if (ts >= round.start_us && ts < round.end_us) {
          round.chaos.push_back(name);
        }
      }
      run_modeled += round.dur_us();
    }
    model.modeled_us += run_modeled;
    model.unmodeled_us +=
        std::max(0.0, (extent_max - extent_min) - run_modeled);
    for (Round& round : rounds) model.rounds.push_back(std::move(round));
  }
  return model;
}

}  // namespace hivesim::telemetry
