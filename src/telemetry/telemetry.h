#ifndef HIVESIM_TELEMETRY_TELEMETRY_H_
#define HIVESIM_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hivesim::telemetry {

/// Records named spans and instant events stamped with *simulation* time
/// (never wall clock, so two identically seeded runs produce byte-identical
/// traces). Every event lives on a "lane" — rendered as one thread row per
/// peer/subsystem when the trace is opened in Perfetto/chrome://tracing.
///
/// Callers pass timestamps explicitly (`Simulator::Now()`); the recorder
/// itself has no clock and no dependencies beyond hivesim_common, which is
/// what lets the simulator kernel itself be instrumented without a cycle.
class TraceRecorder {
 public:
  /// One recorded event. Exposed read-only so in-process consumers (the
  /// critical-path analyzer in telemetry/analysis.h) can walk the trace
  /// without a serialize/parse round trip.
  struct Event {
    double ts_sec = 0;
    double dur_sec = 0;  ///< 0 for instants.
    bool instant = false;
    int lane = 0;  ///< Index into lanes().
    std::string name;
    std::string args_json;
  };

  /// A completed span [start_sec, end_sec] on `lane`. `args_json`, when
  /// non-empty, must be a compact JSON object ("{\"bytes\":42}") and is
  /// embedded verbatim as the event's args.
  void Span(double start_sec, double end_sec, std::string_view lane,
            std::string_view name, std::string args_json = "");

  /// An instant event at `at_sec` on `lane` (faults, cancellations, ...).
  void Instant(double at_sec, std::string_view lane, std::string_view name,
               std::string args_json = "");

  /// The trace as Chrome `trace_event` JSON: load the file in
  /// https://ui.perfetto.dev or chrome://tracing. One metadata-named
  /// thread per lane; timestamps in microseconds of simulation time.
  std::string ToChromeJson() const;

  /// The same events as a flat CSV (kind, lane, name, ts_sec, dur_sec,
  /// args) for spreadsheet/pandas consumption.
  std::string ToCsv() const;

  /// Write either rendering to a file; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;
  bool WriteCsv(const std::string& path) const;

  size_t size() const { return events_.size(); }
  const std::vector<std::string>& lanes() const { return lanes_; }
  const std::vector<Event>& events() const { return events_; }
  void Clear();

 private:
  int LaneId(std::string_view lane);

  std::vector<std::string> lanes_;  ///< tid = index + 1, first-use order.
  std::unordered_map<std::string, int> lane_ids_;
  std::vector<Event> events_;
};

/// Counters, gauges, and fixed-bucket histograms, keyed by flat metric
/// names; labels are folded into the name ("net.bytes_delivered{src_zone=
/// gc-us-central1,dst_zone=gc-europe-west1}", see `LabeledName`). All maps
/// are ordered so that `ToJson` output is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Name of the counter bumped whenever an increment is absorbed by
  /// floating-point rounding (a counter near 2^53 stops moving for small
  /// deltas). A nonzero value means some counter in this registry is
  /// saturated and its total is a lower bound, not an exact count.
  static constexpr std::string_view kPrecisionLossCounter =
      "#counter_precision_loss";

  /// Adds `delta` to a (monotonic) counter, creating it at zero. An add
  /// that does not change the stored value (see `kPrecisionLossCounter`)
  /// is recorded as precision loss instead of vanishing silently.
  void Count(std::string_view name, double delta = 1.0);
  /// Bumps `kPrecisionLossCounter` (shared with `CounterHandle::Add`).
  void NoteCounterPrecisionLoss();
  /// Sets a gauge to its latest value.
  void SetGauge(std::string_view name, double value);

  /// Declares a histogram with explicit upper bucket bounds (ascending,
  /// unique); an implicit +inf overflow bucket is appended. Unsorted or
  /// duplicate bounds are sorted/deduplicated with a warning — `Observe`
  /// bins by "first bound >= value", which is only meaningful on sorted
  /// bounds. No-op if the histogram already exists.
  void DefineHistogram(std::string_view name, std::vector<double> bounds);
  /// Records one observation; auto-defines the histogram with default
  /// bounds {1,2,5,10,20,50,100,200,500,1000} on first use.
  void Observe(std::string_view name, double value);

  /// Current counter value (0 when never incremented).
  double CounterValue(std::string_view name) const;
  /// Current gauge value, or `fallback` when the gauge was never set.
  double GaugeOr(std::string_view name, double fallback) const;
  /// Total observations of a histogram (0 when undefined).
  uint64_t HistogramCount(std::string_view name) const;

  /// The `q`-quantile (q in [0,1]) of a histogram, linearly interpolated
  /// within the bucket containing rank q*total (the Prometheus
  /// `histogram_quantile` estimate). The first bucket interpolates from
  /// lower edge min(0, first bound); ranks landing in the +inf overflow
  /// bucket clamp to the last finite bound. Errors: InvalidArgument for
  /// q outside [0,1], FailedPrecondition for an undefined/empty
  /// histogram or one declared with no finite bounds.
  Result<double> HistogramPercentile(std::string_view name, double q) const;
  /// Convenience p50/p95/p99 wrappers around `HistogramPercentile`.
  Result<double> HistogramP50(std::string_view name) const {
    return HistogramPercentile(name, 0.50);
  }
  Result<double> HistogramP95(std::string_view name) const {
    return HistogramPercentile(name, 0.95);
  }
  Result<double> HistogramP99(std::string_view name) const {
    return HistogramPercentile(name, 0.99);
  }

  /// Stable address of a counter's value slot, creating the counter at
  /// zero. The pointer stays valid until `Clear()` or destruction (the
  /// backing map is node-based, so unrelated inserts never move it);
  /// `CounterHandle` caches it together with `epoch()` to detect both.
  double* CounterSlot(std::string_view name);

  /// Identity stamp for cached counter-slot pointers: unique per live
  /// registry instance and re-stamped by `Clear()`, so a handle that
  /// cached a slot can tell "same registry, same contents generation"
  /// apart from "different registry reusing this address" with one
  /// integer compare.
  uint64_t epoch() const { return epoch_; }

  /// Snapshot of everything as a JSON document, keys sorted — callable at
  /// any simulation time, byte-identical for identical runs.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Folds `other` into this registry so the result is independent of
  /// merge order (the sweep aggregator merges per-run registries from
  /// concurrently completed cells): counters sum, gauges keep the maximum
  /// (a permutation-invariant "peak over runs"), histograms add bucket
  /// counts when the bucket bounds match — mismatched bounds keep the
  /// first definition and fold `other`'s observations into a
  /// `<name>#merge_conflicts` counter instead of silently misbinning.
  void Merge(const MetricsRegistry& other);

  void Clear();

 private:
  struct Histogram {
    std::vector<double> bounds;    ///< Ascending upper bounds.
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 (overflow last).
    double sum = 0;
    uint64_t total = 0;
  };

  uint64_t epoch_ = 0;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Builds "base{k1=v1,k2=v2}" metric names for labeled series.
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Process-global telemetry switchboard. Disabled by default: every
/// instrumentation site guards on `Enabled()` (one branch on a plain bool)
/// before touching the recorder, so benches and tests that never opt in
/// pay near-zero overhead.
///
/// Thread-safety contract: the process-global sinks and the enable switch
/// are *not* synchronized — `Enable`/`Disable`/`Reset` must only be
/// called while no other thread is inside instrumented code (the sweep
/// runner flips the switch before spawning its pool and after joining
/// it). Concurrent simulations each install their own sinks with
/// `ScopedSinks`, which routes that thread's recording into private
/// recorders via thread-local pointers; nothing is shared, so no locks
/// sit on the instrumentation fast path.
class Telemetry {
 public:
  static bool Enabled() { return tls_active_ || enabled_; }
  static bool Disabled() { return !Enabled(); }
  static void Enable() { enabled_ = true; }
  static void Disable() { enabled_ = false; }

  /// The calling thread's sinks: the ScopedSinks overrides when one is
  /// installed on this thread, the process-global instances otherwise.
  static TraceRecorder& trace() {
    return tls_trace_ ? *tls_trace_ : global_trace();
  }
  static MetricsRegistry& metrics() {
    return tls_metrics_ ? *tls_metrics_ : global_metrics();
  }

  /// Routes this thread's telemetry into caller-owned sinks for the
  /// scope's lifetime and forces `Enabled()` on this thread, regardless
  /// of the process-global switch. Scopes nest (LIFO); each sweep worker
  /// wraps one cell's simulation so concurrent cells never alias state.
  class ScopedSinks {
   public:
    ScopedSinks(TraceRecorder* trace, MetricsRegistry* metrics);
    ~ScopedSinks();

    ScopedSinks(const ScopedSinks&) = delete;
    ScopedSinks& operator=(const ScopedSinks&) = delete;

   private:
    TraceRecorder* prev_trace_;
    MetricsRegistry* prev_metrics_;
    bool prev_active_;
  };

  /// Clears both process-global sinks (fresh run / determinism replay);
  /// the enabled state and any thread-local overrides are left unchanged.
  static void Reset();

 private:
  static TraceRecorder& global_trace();
  static MetricsRegistry& global_metrics();

  static inline bool enabled_ = false;
  static inline thread_local TraceRecorder* tls_trace_ = nullptr;
  static inline thread_local MetricsRegistry* tls_metrics_ = nullptr;
  static inline thread_local bool tls_active_ = false;
};

// --- Guarded convenience wrappers (no-ops while telemetry is off) ---

inline bool Enabled() { return Telemetry::Enabled(); }

inline void Span(double start_sec, double end_sec, std::string_view lane,
                 std::string_view name, std::string args_json = "") {
  if (Telemetry::Disabled()) return;
  Telemetry::trace().Span(start_sec, end_sec, lane, name,
                          std::move(args_json));
}

inline void Instant(double at_sec, std::string_view lane,
                    std::string_view name, std::string args_json = "") {
  if (Telemetry::Disabled()) return;
  Telemetry::trace().Instant(at_sec, lane, name, std::move(args_json));
}

inline void Count(std::string_view name, double delta = 1.0) {
  if (Telemetry::Disabled()) return;
  Telemetry::metrics().Count(name, delta);
}

inline void Gauge(std::string_view name, double value) {
  if (Telemetry::Disabled()) return;
  Telemetry::metrics().SetGauge(name, value);
}

inline void Observe(std::string_view name, double value) {
  if (Telemetry::Disabled()) return;
  Telemetry::metrics().Observe(name, value);
}

/// Pointer-stable handle to one counter: resolves the registry's
/// `std::map<std::string>` slot once and bumps a raw double thereafter,
/// so hot-path call sites (the simulator's per-event accounting, the
/// network's per-delivery byte meters) skip the string hash + map walk
/// that `Count()` pays on every call.
///
/// The cached slot is revalidated with two integer compares per `Add`:
/// the handle rebinds when the calling thread's active registry changes
/// (a `Telemetry::ScopedSinks` installed or removed) or when the cached
/// registry's `epoch()` moved (it was `Clear()`ed, invalidating slot
/// addresses). Like the sinks themselves, a handle instance must only be
/// bumped from one thread at a time — embed it in the per-simulation
/// object whose thread owns the recording.
class CounterHandle {
 public:
  explicit CounterHandle(std::string name) : name_(std::move(name)) {}

  /// Adds `delta` to the counter; no-op while telemetry is off. An add
  /// absorbed by floating-point rounding bumps
  /// `MetricsRegistry::kPrecisionLossCounter`, same as `Count()`.
  void Add(double delta = 1.0) {
    if (Telemetry::Disabled()) return;
    MetricsRegistry& registry = Telemetry::metrics();
    if (&registry != registry_ || registry.epoch() != epoch_) {
      Rebind(registry);
    }
    const double before = *slot_;
    *slot_ = before + delta;
    if (*slot_ == before && delta != 0) registry.NoteCounterPrecisionLoss();
  }

  const std::string& name() const { return name_; }

 private:
  void Rebind(MetricsRegistry& registry);

  std::string name_;
  MetricsRegistry* registry_ = nullptr;
  uint64_t epoch_ = 0;
  double* slot_ = nullptr;
};

}  // namespace hivesim::telemetry

#endif  // HIVESIM_TELEMETRY_TELEMETRY_H_
