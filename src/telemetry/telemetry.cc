#include "telemetry/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_annotations.h"

namespace hivesim::telemetry {

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

// --- TraceRecorder ---

int TraceRecorder::LaneId(std::string_view lane) {
  const auto it = lane_ids_.find(std::string(lane));
  if (it != lane_ids_.end()) return it->second;
  const int id = static_cast<int>(lanes_.size());
  lanes_.emplace_back(lane);
  lane_ids_.emplace(lanes_.back(), id);
  return id;
}

void TraceRecorder::Span(double start_sec, double end_sec,
                         std::string_view lane, std::string_view name,
                         std::string args_json) {
  Event e;
  e.ts_sec = start_sec;
  e.dur_sec = end_sec > start_sec ? end_sec - start_sec : 0.0;
  e.instant = false;
  e.lane = LaneId(lane);
  e.name = std::string(name);
  e.args_json = std::move(args_json);
  events_.push_back(std::move(e));
}

void TraceRecorder::Instant(double at_sec, std::string_view lane,
                            std::string_view name, std::string args_json) {
  Event e;
  e.ts_sec = at_sec;
  e.instant = true;
  e.lane = LaneId(lane);
  e.name = std::string(name);
  e.args_json = std::move(args_json);
  events_.push_back(std::move(e));
}

std::string TraceRecorder::ToChromeJson() const {
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"hivesim\"}}";
  for (size_t i = 0; i < lanes_.size(); ++i) {
    out += StrFormat(
        ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        i + 1, JsonWriter::Escape(lanes_[i]).c_str());
  }
  for (const Event& e : events_) {
    // Chrome trace timestamps are microseconds; sim time is seconds.
    // %.6f (picosecond resolution) keeps the decimal text lossless enough
    // that the analyzer's canonicalization (telemetry/round_model.h) can
    // reconcile phase totals against trainer counters to <1e-9 sim-sec
    // over a whole run.
    const double ts_us = e.ts_sec * 1e6;
    if (e.instant) {
      out += StrFormat(
          ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,\"s\":\"t\","
          "\"name\":\"%s\"",
          e.lane + 1, ts_us, JsonWriter::Escape(e.name).c_str());
    } else {
      out += StrFormat(
          ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.6f,\"dur\":%.6f,"
          "\"name\":\"%s\"",
          e.lane + 1, ts_us, e.dur_sec * 1e6,
          JsonWriter::Escape(e.name).c_str());
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

namespace {

// RFC 4180 field escaping: quote when the field contains a comma, quote,
// or line break (doubling inner quotes); `force_quote` keeps the args
// column always-quoted, its historical stable shape.
std::string CsvField(std::string_view raw, bool force_quote = false) {
  const bool needs_quoting =
      force_quote ||
      raw.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(raw);
  std::string quoted;
  quoted.reserve(raw.size() + 2);
  quoted += '"';
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string TraceRecorder::ToCsv() const {
  std::string out = "kind,lane,name,ts_sec,dur_sec,args\n";
  for (const Event& e : events_) {
    out += StrFormat("%s,%s,%s,%.6f,%.6f,%s\n",
                     e.instant ? "instant" : "span",
                     CsvField(lanes_[e.lane]).c_str(),
                     CsvField(e.name).c_str(), e.ts_sec, e.dur_sec,
                     CsvField(e.args_json, /*force_quote=*/true).c_str());
  }
  return out;
}

bool TraceRecorder::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

bool TraceRecorder::WriteCsv(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

void TraceRecorder::Clear() {
  lanes_.clear();
  lane_ids_.clear();
  events_.clear();
}

// --- MetricsRegistry ---

namespace {
// Epochs are globally unique across all registries ever constructed, so a
// handle whose cached registry died and whose address was reused by a new
// registry (common with stack-allocated registries in tests and sweep
// cells) can never see a stale epoch match. Atomic because sweep workers
// construct per-cell registries concurrently.
uint64_t NextRegistryEpoch() {
  // Lock-free: a pure fetch_add ticket counter — uniqueness is the whole
  // contract, no other state is published, so relaxed ordering is enough.
  HIVESIM_ATOMIC_LOCK_FREE static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

MetricsRegistry::MetricsRegistry() : epoch_(NextRegistryEpoch()) {}

double* MetricsRegistry::CounterSlot(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return &it->second;
  return &counters_.emplace(std::string(name), 0.0).first->second;
}

void MetricsRegistry::Count(std::string_view name, double delta) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    const double before = it->second;
    it->second += delta;
    if (it->second == before && delta != 0) NoteCounterPrecisionLoss();
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::NoteCounterPrecisionLoss() {
  // Bumped directly (not via Count) so a saturated loss counter can
  // never recurse; '#' keeps the name out of the regular metric
  // namespace, mirroring the <name>#merge_conflicts idiom.
  const auto it = counters_.find(kPrecisionLossCounter);
  if (it != counters_.end()) {
    it->second += 1.0;
  } else {
    counters_.emplace(std::string(kPrecisionLossCounter), 1.0);
  }
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(name), value);
  }
}

void MetricsRegistry::DefineHistogram(std::string_view name,
                                      std::vector<double> bounds) {
  if (histograms_.find(name) != histograms_.end()) return;
  // The header contract requires ascending unique bounds; anything else
  // would misbin every observation ("first bound >= value" only means
  // the right bucket when bounds are sorted) and breaks the binary
  // search below. Fix the definition loudly instead of recording
  // garbage.
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    const size_t given = bounds.size();
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    HIVESIM_LOG(Warning)
        << "histogram '" << std::string(name)
        << "' declared with unsorted or duplicate bounds; sorted to "
        << bounds.size() << " unique bounds (" << given << " given)";
  }
  Histogram h;
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  histograms_.emplace(std::string(name), std::move(h));
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    DefineHistogram(name, {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
    it = histograms_.find(name);
  }
  Histogram& h = it->second;
  // First bound >= value, located by binary search (bounds are sorted by
  // construction); everything past the last bound — including NaN, which
  // compares false against every bound — lands in the overflow bucket.
  size_t bucket = h.bounds.size();
  if (!std::isnan(value)) {
    bucket = static_cast<size_t>(
        std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
        h.bounds.begin());
  }
  ++h.counts[bucket];
  h.sum += value;
  ++h.total;
}

double MetricsRegistry::CounterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0.0;
}

double MetricsRegistry::GaugeOr(std::string_view name, double fallback) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : fallback;
}

uint64_t MetricsRegistry::HistogramCount(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.total : 0;
}

Result<double> MetricsRegistry::HistogramPercentile(std::string_view name,
                                                    double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("quantile must be in [0,1], got %g", q));
  }
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.total == 0) {
    return Status::FailedPrecondition(
        StrCat("histogram '", std::string(name), "' is empty"));
  }
  const Histogram& h = it->second;
  if (h.bounds.empty()) {
    return Status::FailedPrecondition(
        StrCat("histogram '", std::string(name), "' has no finite buckets"));
  }
  const double target_rank = q * static_cast<double>(h.total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    const uint64_t in_bucket = h.counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= target_rank &&
        in_bucket > 0) {
      // Observations are assumed uniform inside the bucket; the first
      // bucket's lower edge is min(0, bound) so non-negative series
      // interpolate from zero.
      const double lower = i == 0 ? std::min(0.0, h.bounds[0]) : h.bounds[i - 1];
      const double upper = h.bounds[i];
      const double into_bucket =
          target_rank - static_cast<double>(cumulative);
      const double fraction =
          std::min(1.0, std::max(0.0, into_bucket /
                                          static_cast<double>(in_bucket)));
      return lower + fraction * (upper - lower);
    }
    cumulative += in_bucket;
  }
  // Rank lands in the +inf overflow bucket: the estimate clamps to the
  // last finite bound (matching Prometheus' histogram_quantile).
  return h.bounds.back();
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : counters_) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges_) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Int(static_cast<int64_t>(h.total));
    json.Key("sum").Number(h.sum);
    json.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.counts.size(); ++i) {
      json.BeginObject();
      json.Key("le");
      if (i < h.bounds.size()) {
        json.Number(h.bounds[i]);
      } else {
        json.String("inf");
      }
      json.Key("count").Int(static_cast<int64_t>(h.counts[i]));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.ToString();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson() + "\n");
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    Count(name, value);
  }
  for (const auto& [name, value] : other.gauges_) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else if (value > it->second) {
      it->second = value;
    }
  }
  for (const auto& [name, theirs] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    Histogram& ours = it->second;
    if (ours.bounds != theirs.bounds) {
      Count(name + "#merge_conflicts", static_cast<double>(theirs.total));
      continue;
    }
    for (size_t i = 0; i < ours.counts.size(); ++i) {
      ours.counts[i] += theirs.counts[i];
    }
    ours.sum += theirs.sum;
    ours.total += theirs.total;
  }
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  epoch_ = NextRegistryEpoch();  // Invalidate cached counter slots.
}

void CounterHandle::Rebind(MetricsRegistry& registry) {
  registry_ = &registry;
  epoch_ = registry.epoch();
  slot_ = registry.CounterSlot(name_);
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += '=';
    out += value;
  }
  out += '}';
  return out;
}

// --- Telemetry ---

TraceRecorder& Telemetry::global_trace() {
  static TraceRecorder recorder;
  return recorder;
}

MetricsRegistry& Telemetry::global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

Telemetry::ScopedSinks::ScopedSinks(TraceRecorder* trace,
                                    MetricsRegistry* metrics)
    : prev_trace_(tls_trace_),
      prev_metrics_(tls_metrics_),
      prev_active_(tls_active_) {
  tls_trace_ = trace;
  tls_metrics_ = metrics;
  tls_active_ = true;
}

Telemetry::ScopedSinks::~ScopedSinks() {
  tls_trace_ = prev_trace_;
  tls_metrics_ = prev_metrics_;
  tls_active_ = prev_active_;
}

void Telemetry::Reset() {
  global_trace().Clear();
  global_metrics().Clear();
}

}  // namespace hivesim::telemetry
