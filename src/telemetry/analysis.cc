#include "telemetry/analysis.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/json.h"
#include "common/strings.h"
#include "common/table_writer.h"

namespace hivesim::telemetry {

namespace {

// Fixed bucket ladder (1-2-5 decades, seconds) for the straggler
// histograms; percentiles interpolate inside these buckets.
const std::vector<double>& StragglerBounds() {
  static const std::vector<double> bounds = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,  0.5, 1,
      2,     5,     10,    20,   50,   100,  200,  500,  1000};
  return bounds;
}

// Per-phase accumulation in canonical microseconds; converted to
// seconds exactly once at the end so both analysis modes divide the
// same doubles.
struct PhaseMicros {
  double calc = 0;
  double matchmake_wait = 0;
  double matchmake = 0;
  double flow = 0;
  double overhead = 0;

  void Add(Phase phase, double dur_us) {
    switch (phase) {
      case Phase::kCalc: calc += dur_us; break;
      case Phase::kMatchmakeWait: matchmake_wait += dur_us; break;
      case Phase::kMatchmake: matchmake += dur_us; break;
      case Phase::kFlow: flow += dur_us; break;
      case Phase::kOverhead: overhead += dur_us; break;
    }
  }

  PhaseTotals ToSeconds() const {
    PhaseTotals totals;
    totals.calc_sec = calc / 1e6;
    totals.matchmake_wait_sec = matchmake_wait / 1e6;
    totals.matchmake_sec = matchmake / 1e6;
    totals.flow_sec = flow / 1e6;
    totals.overhead_sec = overhead / 1e6;
    return totals;
  }
};

StragglerPercentiles Percentiles(const MetricsRegistry& metrics,
                                 std::string_view name) {
  StragglerPercentiles p;
  p.count = metrics.HistogramCount(name);
  if (p.count == 0) return p;
  p.p50 = metrics.HistogramP50(name).value_or(0);
  p.p95 = metrics.HistogramP95(name).value_or(0);
  p.p99 = metrics.HistogramP99(name).value_or(0);
  return p;
}

void WritePercentiles(JsonWriter& json, const StragglerPercentiles& p) {
  json.BeginObject();
  json.Key("count").Int(static_cast<int64_t>(p.count));
  json.Key("p50").Number(p.p50);
  json.Key("p95").Number(p.p95);
  json.Key("p99").Number(p.p99);
  json.EndObject();
}

std::string FormatSeconds(double sec) { return StrFormat("%.3f", sec); }

std::string FormatShare(double numerator, double denominator) {
  if (denominator <= 0) return "-";
  return StrFormat("%.1f%%", 100.0 * numerator / denominator);
}

}  // namespace

Result<AnalysisReport> AnalyzeDataset(const TraceDataset& dataset,
                                      const AnalysisOptions& options) {
  AnalysisReport report;
  report.options = options;
  HIVESIM_ASSIGN_OR_RETURN(report.model, BuildRoundModel(dataset));

  PhaseMicros total_us;
  std::map<std::string, LinkStat> links;
  std::map<int, PeerStat> peers;
  std::map<int, std::string> peer_zone;
  MetricsRegistry straggler_metrics;
  straggler_metrics.DefineHistogram("round_comm_sec", StragglerBounds());
  straggler_metrics.DefineHistogram("critical_flow_sec", StragglerBounds());

  for (const Round& round : report.model.rounds) {
    PhaseMicros round_us;
    std::map<std::string, double> round_link_us;
    int last_flow = -1;
    for (const Segment& seg : round.critical) {
      round_us.Add(seg.phase, seg.dur_us());
      if (seg.phase == Phase::kFlow) {
        const FlowRef& flow = round.flows[static_cast<size_t>(seg.flow)];
        round_link_us[flow.link] += seg.dur_us();
        links[flow.link].critical_sec += seg.dur_us();  // us for now.
        peers[flow.src].critical_sec += seg.dur_us();
        last_flow = seg.flow;
        straggler_metrics.Observe("critical_flow_sec",
                                  seg.dur_us() / 1e6);
      }
    }
    for (const FlowRef& flow : round.flows) {
      LinkStat& link = links[flow.link];
      link.bytes += flow.bytes;
      ++link.flows;
      if (!flow.src_zone.empty()) {
        peer_zone.emplace(flow.src, flow.src_zone);
      }
      if (!flow.dst_zone.empty()) {
        peer_zone.emplace(flow.dst, flow.dst_zone);
      }
    }

    RoundSummary summary;
    summary.run = round.run;
    summary.epoch = round.epoch;
    summary.start_sec = round.start_us / 1e6;
    summary.end_sec = round.end_us / 1e6;
    summary.phases = round_us.ToSeconds();
    for (const auto& [link, us] : round_link_us) {
      // Map iteration is name-sorted, so the strict > keeps the
      // lexicographically smallest link on ties.
      if (summary.binding_link.empty() ||
          us > round_link_us[summary.binding_link]) {
        summary.binding_link = link;
      }
    }
    if (last_flow >= 0) {
      summary.straggler_peer =
          round.flows[static_cast<size_t>(last_flow)].src;
      ++peers[summary.straggler_peer].straggler_rounds;
    }
    summary.retries = round.retries;
    summary.degraded = round.degraded;
    summary.chaos = round.chaos;
    straggler_metrics.Observe(
        "round_comm_sec",
        (round_us.matchmake_wait + round_us.matchmake + round_us.flow +
         round_us.overhead) /
            1e6);
    report.rounds.push_back(std::move(summary));

    total_us.calc += round_us.calc;
    total_us.matchmake_wait += round_us.matchmake_wait;
    total_us.matchmake += round_us.matchmake;
    total_us.flow += round_us.flow;
    total_us.overhead += round_us.overhead;
  }
  report.totals = total_us.ToSeconds();

  // Per-peer timelines (peer/<n> lanes) for the straggler section.
  for (const CanonEvent& e : dataset.events) {
    int peer = -1;
    if (e.instant ||
        std::sscanf(e.lane.c_str(), "peer/%d", &peer) != 1) {
      continue;
    }
    PeerStat& stat = peers[peer];
    if (e.name == "accumulate") {
      stat.accumulate_sec += e.dur_us;  // us for now.
    } else if (e.name == "average") {
      stat.average_sec += e.dur_us;
    } else if (e.name == "sync") {
      stat.sync_sec += e.dur_us;
    }
  }

  for (auto& [link, stat] : links) {
    stat.link = link;
    stat.critical_sec /= 1e6;
    report.links.push_back(stat);
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const LinkStat& a, const LinkStat& b) {
              if (a.critical_sec != b.critical_sec) {
                return a.critical_sec > b.critical_sec;
              }
              return a.link < b.link;
            });

  for (auto& [peer, stat] : peers) {
    stat.peer = peer;
    const auto zone = peer_zone.find(peer);
    stat.zone = zone != peer_zone.end() ? zone->second : "?";
    stat.critical_sec /= 1e6;
    stat.accumulate_sec /= 1e6;
    stat.average_sec /= 1e6;
    stat.sync_sec /= 1e6;
    report.peers.push_back(stat);
  }

  report.round_comm = Percentiles(straggler_metrics, "round_comm_sec");
  report.critical_flow =
      Percentiles(straggler_metrics, "critical_flow_sec");

  const double critical_sec = report.totals.critical_sec();
  const double factor = options.what_if_factor;
  const double removable = factor > 1 ? 1.0 - 1.0 / factor : 0.0;
  for (const LinkStat& link : report.links) {
    if (static_cast<int>(report.headroom.size()) >= options.top_k) break;
    if (!(link.critical_sec > 0) || !(critical_sec > 0)) break;
    HeadroomEstimate estimate;
    estimate.link = link.link;
    estimate.critical_share = link.critical_sec / critical_sec;
    estimate.speedup_bound =
        1.0 / (1.0 - estimate.critical_share * removable);
    report.headroom.push_back(std::move(estimate));
  }
  return report;
}

Result<AnalysisReport> AnalyzeRecorder(const TraceRecorder& recorder,
                                       const AnalysisOptions& options) {
  TraceDataset dataset;
  HIVESIM_ASSIGN_OR_RETURN(dataset, DatasetFromRecorder(recorder));
  return AnalyzeDataset(dataset, options);
}

Result<AnalysisReport> AnalyzeChromeJson(std::string_view json_text,
                                         const AnalysisOptions& options) {
  TraceDataset dataset;
  HIVESIM_ASSIGN_OR_RETURN(dataset, DatasetFromChromeJson(json_text));
  return AnalyzeDataset(dataset, options);
}

namespace {

void Reconcile(AnalysisReport* report, double calc, double comm,
               double matchmake_wait) {
  report->reconciliation.clear();
  const PhaseTotals& t = report->totals;
  ReconciliationRow row;
  row.name = "trainer.calc_sec";
  row.trace_sec = t.calc_sec;
  row.counter_sec = calc;
  row.delta_sec = row.trace_sec - row.counter_sec;
  report->reconciliation.push_back(row);
  row.name = "trainer.comm_sec";
  row.trace_sec = t.comm_sec();
  row.counter_sec = comm;
  row.delta_sec = row.trace_sec - row.counter_sec;
  report->reconciliation.push_back(row);
  row.name = "trainer.matchmake_wait_sec";
  row.trace_sec = t.matchmake_wait_sec + t.matchmake_sec;
  row.counter_sec = matchmake_wait;
  row.delta_sec = row.trace_sec - row.counter_sec;
  report->reconciliation.push_back(row);
}

}  // namespace

void AttachMetrics(AnalysisReport* report, const MetricsRegistry& metrics) {
  Reconcile(report, metrics.CounterValue("trainer.calc_sec"),
            metrics.CounterValue("trainer.comm_sec"),
            metrics.CounterValue("trainer.matchmake_wait_sec"));
}

Status AttachMetricsJson(AnalysisReport* report, const JsonValue& doc) {
  const JsonValue* counters = doc.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Status::InvalidArgument(
        "not a metrics snapshot: missing counters object");
  }
  const auto counter = [counters](const char* name) {
    const JsonValue* v = counters->Find(name);
    return v != nullptr ? v->NumberOr(0) : 0.0;
  };
  Reconcile(report, counter("trainer.calc_sec"),
            counter("trainer.comm_sec"),
            counter("trainer.matchmake_wait_sec"));
  return Status::OK();
}

Result<AnalysisReport> RoundAnalyzer::Analyze() const {
  if (Telemetry::Disabled()) {
    return Status::FailedPrecondition(
        "telemetry is disabled: nothing recorded to analyze");
  }
  Result<AnalysisReport> report =
      AnalyzeRecorder(Telemetry::trace(), options_);
  if (report.ok()) AttachMetrics(&report.value(), Telemetry::metrics());
  return report;
}

std::string AnalysisReport::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("hivesim-analysis/1");
  json.Key("headroom").BeginArray();
  for (const HeadroomEstimate& h : headroom) {
    json.BeginObject();
    json.Key("critical_share").Number(h.critical_share);
    json.Key("link").String(h.link);
    json.Key("speedup_bound").Number(h.speedup_bound);
    json.Key("what_if_factor").Number(options.what_if_factor);
    json.EndObject();
  }
  json.EndArray();
  json.Key("links").BeginArray();
  for (const LinkStat& link : links) {
    json.BeginObject();
    json.Key("bytes").Number(link.bytes);
    json.Key("critical_sec").Number(link.critical_sec);
    json.Key("flows").Int(static_cast<int64_t>(link.flows));
    json.Key("link").String(link.link);
    json.EndObject();
  }
  json.EndArray();
  json.Key("peers").BeginArray();
  for (const PeerStat& peer : peers) {
    json.BeginObject();
    json.Key("accumulate_sec").Number(peer.accumulate_sec);
    json.Key("average_sec").Number(peer.average_sec);
    json.Key("critical_sec").Number(peer.critical_sec);
    json.Key("peer").Int(peer.peer);
    json.Key("straggler_rounds").Int(
        static_cast<int64_t>(peer.straggler_rounds));
    json.Key("sync_sec").Number(peer.sync_sec);
    json.Key("zone").String(peer.zone);
    json.EndObject();
  }
  json.EndArray();
  if (!reconciliation.empty()) {
    json.Key("reconciliation").BeginArray();
    for (const ReconciliationRow& row : reconciliation) {
      json.BeginObject();
      json.Key("counter_sec").Number(row.counter_sec);
      json.Key("delta_sec").Number(row.delta_sec);
      json.Key("name").String(row.name);
      json.Key("trace_sec").Number(row.trace_sec);
      json.EndObject();
    }
    json.EndArray();
  }
  json.Key("rounds").BeginArray();
  for (const RoundSummary& round : rounds) {
    json.BeginObject();
    json.Key("binding_link").String(round.binding_link);
    json.Key("calc_sec").Number(round.phases.calc_sec);
    json.Key("chaos").BeginArray();
    for (const std::string& name : round.chaos) json.String(name);
    json.EndArray();
    json.Key("degraded").Bool(round.degraded);
    json.Key("end_sec").Number(round.end_sec);
    json.Key("epoch").Int(round.epoch);
    json.Key("flow_sec").Number(round.phases.flow_sec);
    json.Key("matchmake_sec").Number(round.phases.matchmake_sec);
    json.Key("matchmake_wait_sec").Number(round.phases.matchmake_wait_sec);
    json.Key("overhead_sec").Number(round.phases.overhead_sec);
    json.Key("retries").Int(round.retries);
    json.Key("run").Int(round.run);
    json.Key("start_sec").Number(round.start_sec);
    json.Key("straggler_peer").Int(round.straggler_peer);
    json.EndObject();
  }
  json.EndArray();
  json.Key("stragglers").BeginObject();
  json.Key("critical_flow_sec");
  WritePercentiles(json, critical_flow);
  json.Key("round_comm_sec");
  WritePercentiles(json, round_comm);
  json.EndObject();
  json.Key("totals").BeginObject();
  json.Key("calc_sec").Number(totals.calc_sec);
  json.Key("comm_sec").Number(totals.comm_sec());
  json.Key("critical_sec").Number(totals.critical_sec());
  json.Key("flow_sec").Number(totals.flow_sec);
  json.Key("matchmake_sec").Number(totals.matchmake_sec);
  json.Key("matchmake_wait_sec").Number(totals.matchmake_wait_sec);
  json.Key("modeled_sec").Number(model.modeled_us / 1e6);
  json.Key("overhead_sec").Number(totals.overhead_sec);
  json.Key("rounds").Int(static_cast<int64_t>(rounds.size()));
  json.Key("runs").Int(model.num_runs);
  json.Key("unmodeled_sec").Number(model.unmodeled_us / 1e6);
  json.EndObject();
  json.EndObject();
  return json.ToString();
}

void AnalysisReport::PrintTable(std::ostream& os) const {
  const double critical_sec = totals.critical_sec();
  os << "critical-path attribution (hivesim-analysis/1): "
     << rounds.size() << " round(s), " << model.num_runs << " run(s), "
     << FormatSeconds(model.modeled_us / 1e6) << " s modeled, "
     << FormatSeconds(model.unmodeled_us / 1e6) << " s unmodeled\n\n";

  TableWriter phase_table({"Phase", "Critical s", "Share"});
  const auto phase_row = [&](const char* name, double sec) {
    phase_table.AddRow(
        {name, FormatSeconds(sec), FormatShare(sec, critical_sec)});
  };
  phase_row("calc", totals.calc_sec);
  phase_row("flow (WAN)", totals.flow_sec);
  phase_row("comm overhead", totals.overhead_sec);
  phase_row("matchmake", totals.matchmake_sec);
  phase_row("matchmake-wait", totals.matchmake_wait_sec);
  phase_table.AddSeparator();
  phase_row("total", critical_sec);
  phase_table.Print(os);

  if (!links.empty()) {
    os << "\nWAN links by critical-path time\n";
    TableWriter link_table({"Link", "Critical s", "Share", "GB", "Flows"});
    size_t shown = 0;
    for (const LinkStat& link : links) {
      if (shown++ >= 10) break;
      link_table.AddRow({link.link, FormatSeconds(link.critical_sec),
                         FormatShare(link.critical_sec, critical_sec),
                         StrFormat("%.3f", link.bytes / 1e9),
                         StrFormat("%llu",
                                   static_cast<unsigned long long>(
                                       link.flows))});
    }
    link_table.Print(os);
  }

  os << "\nStragglers\n";
  os << StrFormat(
      "  round comm s:     p50 %.3f  p95 %.3f  p99 %.3f  (n=%llu)\n",
      round_comm.p50, round_comm.p95, round_comm.p99,
      static_cast<unsigned long long>(round_comm.count));
  os << StrFormat(
      "  critical flow s:  p50 %.3f  p95 %.3f  p99 %.3f  (n=%llu)\n",
      critical_flow.p50, critical_flow.p95, critical_flow.p99,
      static_cast<unsigned long long>(critical_flow.count));
  if (!peers.empty()) {
    TableWriter peer_table({"Peer", "Zone", "Critical s",
                            "Straggler rounds", "Sync s"});
    // Peers ranked by critical-path time (ties by id) — the senders
    // whose transfers most often bound the round.
    std::vector<const PeerStat*> ranked;
    ranked.reserve(peers.size());
    for (const PeerStat& peer : peers) ranked.push_back(&peer);
    std::sort(ranked.begin(), ranked.end(),
              [](const PeerStat* a, const PeerStat* b) {
                if (a->critical_sec != b->critical_sec) {
                  return a->critical_sec > b->critical_sec;
                }
                return a->peer < b->peer;
              });
    size_t shown = 0;
    for (const PeerStat* peer : ranked) {
      if (shown++ >= 8) break;
      peer_table.AddRow(
          {StrFormat("%d", peer->peer), peer->zone,
           FormatSeconds(peer->critical_sec),
           StrFormat("%llu",
                     static_cast<unsigned long long>(
                         peer->straggler_rounds)),
           FormatSeconds(peer->sync_sec)});
    }
    peer_table.Print(os);
  }

  if (!headroom.empty()) {
    os << StrFormat("\nHeadroom (what-if: link bandwidth x%.1f)\n",
                    options.what_if_factor);
    for (const HeadroomEstimate& h : headroom) {
      os << StrFormat(
          "  %s carries %.1f%% of critical-path time; speeding it "
          "x%.1f bounds overall speedup at %.2fx\n",
          h.link.c_str(), 100.0 * h.critical_share,
          options.what_if_factor, h.speedup_bound);
    }
  }

  if (!reconciliation.empty()) {
    os << "\nReconciliation vs trainer counters\n";
    TableWriter rec_table({"Counter", "Trace s", "Counter s", "Delta s"});
    for (const ReconciliationRow& row : reconciliation) {
      rec_table.AddRow({row.name, StrFormat("%.6f", row.trace_sec),
                        StrFormat("%.6f", row.counter_sec),
                        StrFormat("%+.9f", row.delta_sec)});
    }
    rec_table.Print(os);
  }
}

}  // namespace hivesim::telemetry
