#ifndef HIVESIM_TELEMETRY_ANALYSIS_H_
#define HIVESIM_TELEMETRY_ANALYSIS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_parse.h"
#include "common/result.h"
#include "telemetry/round_model.h"
#include "telemetry/telemetry.h"

namespace hivesim::telemetry {

/// Critical-path bottleneck attribution over a recorded trace: which
/// resource — compute, a WAN link, stragglers, matchmaking — bounds
/// training throughput, per round and in aggregate, plus what-if
/// headroom bounds for speeding up the top links. Consumes the round
/// model built by telemetry/round_model.h; runs in-process on a live
/// `TraceRecorder` (see RoundAnalyzer) or post-hoc on a written Chrome
/// trace via `hivesim analyze`. Same seed => byte-identical
/// `ToJson()` output, in either mode.

struct AnalysisOptions {
  /// Number of headroom entries (top links by critical-path time).
  int top_k = 5;
  /// What-if link speed multiplier used for the headroom bound.
  double what_if_factor = 2.0;
};

/// Critical-path seconds per phase (all in sim-seconds).
struct PhaseTotals {
  double calc_sec = 0;
  double matchmake_wait_sec = 0;
  double matchmake_sec = 0;
  double flow_sec = 0;      ///< Bound by a WAN transfer.
  double overhead_sec = 0;  ///< Comm window with no flow in flight.

  double critical_sec() const {
    return calc_sec + matchmake_wait_sec + matchmake_sec + flow_sec +
           overhead_sec;
  }
  /// The trainer's "comm" aggregate: everything after calc.
  double comm_sec() const {
    return matchmake_wait_sec + matchmake_sec + flow_sec + overhead_sec;
  }
};

/// Attribution for one WAN link ("src_zone->dst_zone").
struct LinkStat {
  std::string link;
  double critical_sec = 0;  ///< Critical-path time bound by this link.
  double bytes = 0;         ///< Bytes of round-assigned flows on it.
  uint64_t flows = 0;       ///< Round-assigned flow count.
};

/// Attribution for one peer (flows it sent that bound the round).
struct PeerStat {
  int peer = -1;
  std::string zone;            ///< From flow args; "?" when unknown.
  double critical_sec = 0;     ///< Critical kFlow time with src==peer.
  uint64_t straggler_rounds = 0;  ///< Rounds whose last critical flow
                                  ///< was sent by this peer.
  double accumulate_sec = 0;   ///< From the peer/<n> timeline lanes.
  double average_sec = 0;
  double sync_sec = 0;
};

/// Per-round summary row (full segment detail stays in `model`).
struct RoundSummary {
  int run = 0;
  int epoch = 0;
  double start_sec = 0;
  double end_sec = 0;
  PhaseTotals phases;
  std::string binding_link;  ///< Link with the most critical time; ""
                             ///< when no flow was ever binding.
  int straggler_peer = -1;   ///< Sender of the last critical flow.
  int retries = 0;
  bool degraded = false;
  std::vector<std::string> chaos;
};

/// p50/p95/p99 of a straggler distribution, interpolated from the
/// analyzer's fixed histogram buckets (MetricsRegistry percentiles).
struct StragglerPercentiles {
  uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Amdahl-style what-if: speeding the link by `what_if_factor` removes
/// at most critical_share*(1-1/factor) of total critical time, bounding
/// the whole-run speedup. An upper bound: the re-evaluation shortens
/// critical segments in place and ignores that a different activity
/// (another flow, another phase) becomes binding once this one shrinks.
struct HeadroomEstimate {
  std::string link;
  double critical_share = 0;  ///< link critical / total critical.
  double speedup_bound = 1;
};

/// One trace-vs-metrics consistency row (CLI --metrics; tests).
struct ReconciliationRow {
  std::string name;        ///< Counter name in the metrics snapshot.
  double trace_sec = 0;    ///< Analyzer's total from the trace.
  double counter_sec = 0;  ///< The trainer's own counter.
  double delta_sec = 0;    ///< trace - counter.
};

struct AnalysisReport {
  RoundModel model;
  PhaseTotals totals;
  std::vector<RoundSummary> rounds;      ///< Parallel to model.rounds.
  std::vector<LinkStat> links;           ///< Critical desc, then name.
  std::vector<PeerStat> peers;           ///< Peer id ascending.
  StragglerPercentiles round_comm;       ///< Per-round comm seconds.
  StragglerPercentiles critical_flow;    ///< Critical flow-segment secs.
  std::vector<HeadroomEstimate> headroom;
  std::vector<ReconciliationRow> reconciliation;  ///< Empty until
                                                  ///< AttachMetrics*.
  AnalysisOptions options;

  /// The deterministic `analysis.json` document (schema
  /// "hivesim-analysis/1"), sorted keys/sections, no trailing newline.
  std::string ToJson() const;

  /// The paper-Fig.2-style terminal rendering: phase breakdown, top
  /// links, stragglers, headroom.
  void PrintTable(std::ostream& os) const;
};

/// Core entry point: attribution over an already-canonicalized dataset.
Result<AnalysisReport> AnalyzeDataset(const TraceDataset& dataset,
                                      const AnalysisOptions& options = {});

/// In-process mode: analyze a live recorder's contents.
Result<AnalysisReport> AnalyzeRecorder(const TraceRecorder& recorder,
                                       const AnalysisOptions& options = {});

/// Post-hoc mode: analyze the text of a written Chrome trace file.
Result<AnalysisReport> AnalyzeChromeJson(std::string_view json_text,
                                         const AnalysisOptions& options = {});

/// Cross-checks the report's phase totals against the trainer's own
/// phase counters (trainer.calc_sec | trainer.comm_sec |
/// trainer.matchmake_wait_sec), filling report->reconciliation. The
/// overload taking a JsonValue reads a MetricsRegistry::ToJson snapshot
/// (the CLI's --metrics path); missing counters read as 0.
void AttachMetrics(AnalysisReport* report, const MetricsRegistry& metrics);
Status AttachMetricsJson(AnalysisReport* report, const JsonValue& doc);

/// In-process convenience: analyzes the calling thread's telemetry
/// sinks. Rides the existing one-branch enable switch — constructing it
/// is free, and `Analyze` errors with FailedPrecondition while
/// telemetry is disabled (nothing was recorded).
class RoundAnalyzer {
 public:
  explicit RoundAnalyzer(AnalysisOptions options = {})
      : options_(options) {}

  /// Analyzes `Telemetry::trace()` and reconciles against
  /// `Telemetry::metrics()`.
  Result<AnalysisReport> Analyze() const;

 private:
  AnalysisOptions options_;
};

}  // namespace hivesim::telemetry

#endif  // HIVESIM_TELEMETRY_ANALYSIS_H_
