#ifndef HIVESIM_TELEMETRY_ROUND_MODEL_H_
#define HIVESIM_TELEMETRY_ROUND_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/json_parse.h"
#include "common/result.h"
#include "telemetry/telemetry.h"

namespace hivesim::telemetry {

/// The analyzer's input/round-reconstruction layer (consumed by
/// telemetry/analysis.h). A trace reaches the analyzer two ways — live
/// from a `TraceRecorder` or post-hoc from the Chrome trace_event JSON
/// the recorder wrote — and both must yield *bit-identical* doubles so
/// the final report is byte-identical across modes. The trick is to
/// canonicalize through the serialized form: `ToChromeJson` prints
/// microsecond timestamps as %.6f decimal text, so the in-process path
/// formats and re-parses each timestamp exactly the way the post-hoc
/// parser (`common/json_parse`, strtod) reads it back. All round-model
/// arithmetic then happens on those canonical microsecond doubles, in
/// recorder order, in both modes.

/// The canonical microsecond value of `value_us`: the double obtained by
/// printing it as %.6f (the trace file's format) and parsing the text
/// back with strtod. Idempotent; quantizes to 1e-6 us = 1e-12 sim-sec.
double CanonMicros(double value_us);

/// One trace event normalized to canonical microseconds. `args` holds
/// the parsed args object (kNull when the event carried none).
struct CanonEvent {
  bool instant = false;
  double ts_us = 0;
  double dur_us = 0;  ///< 0 for instants.
  std::string lane;
  std::string name;
  JsonValue args;

  double end_us() const { return ts_us + dur_us; }
};

/// A full trace in canonical form, events in recorder order (identical
/// to file order — `ToChromeJson` serializes in recorder order).
struct TraceDataset {
  std::vector<std::string> lanes;  ///< First-use order.
  std::vector<CanonEvent> events;
};

/// Builds the canonical dataset straight from an in-process recorder.
/// Errors (InvalidArgument) if an event's args string is not valid JSON
/// — the same trace would be unreadable post-hoc.
Result<TraceDataset> DatasetFromRecorder(const TraceRecorder& recorder);

/// Builds the canonical dataset from the text of a Chrome trace_event
/// file written by `TraceRecorder::ToChromeJson`. Lane names come from
/// the thread_name metadata events; non-metadata events must reference
/// a declared tid.
Result<TraceDataset> DatasetFromChromeJson(std::string_view json_text);

/// What a slice of critical-path time was spent on.
enum class Phase {
  kCalc,           ///< Gradient accumulation toward the target batch.
  kMatchmakeWait,  ///< Waiting on group formation, no matchmake span.
  kMatchmake,      ///< Inside a DHT matchmake span.
  kFlow,           ///< Bound by a WAN transfer (see Segment::flow).
  kOverhead,       ///< Comm window not covered by any flow (serialize,
                   ///< aggregate, apply, retry backoff).
};
std::string_view PhaseName(Phase phase);

/// A gradient-exchange (or DHT/control) transfer assigned to a round,
/// clipped to the round's communication window.
struct FlowRef {
  double start_us = 0;
  double end_us = 0;
  double bytes = 0;
  int src = -1;
  int dst = -1;
  std::string src_zone;  ///< Empty when the trace predates zone args.
  std::string dst_zone;
  std::string link;  ///< "src_zone->dst_zone", or "node<s>->node<d>".
};

/// One slice of a round's critical path. Slices partition
/// [Round::start_us, Round::end_us]; `flow` indexes Round::flows for
/// kFlow slices and is -1 otherwise.
struct Segment {
  double start_us = 0;
  double end_us = 0;
  Phase phase = Phase::kOverhead;
  int flow = -1;

  double dur_us() const { return end_us - start_us; }
};

/// One reconstructed training round (trainer epoch).
struct Round {
  int run = 0;    ///< Trace-segment index (see RoundModel::num_runs).
  int epoch = 0;  ///< Trainer epoch number within the run.
  double start_us = 0;
  double calc_end_us = 0;   ///< End of gradient accumulation.
  double avg_start_us = 0;  ///< Averaging start (== calc_end when the
                            ///< trainer recorded no matchmake wait).
  double end_us = 0;
  std::vector<FlowRef> flows;     ///< Recorder order, clipped.
  std::vector<Segment> critical;  ///< Partition of [start_us, end_us].
  int retries = 0;                ///< round-retry instants in-window.
  bool degraded = false;          ///< round-degraded instant in-window.
  std::vector<std::string> chaos; ///< Chaos instants in-window, in order.

  double dur_us() const { return end_us - start_us; }
};

/// The reconstructed dependency model of a whole trace.
struct RoundModel {
  std::vector<Round> rounds;  ///< Run order, then epoch order.
  /// Number of trace segments. `hivesim run`/`fleet` record several
  /// simulations (each restarting at t=0) into one recorder, separated
  /// by "run-start" instants on the "trace" lane; a marker-free trace
  /// is a single run.
  int num_runs = 1;
  double modeled_us = 0;    ///< Sum of round durations.
  double unmodeled_us = 0;  ///< Traced sim-time outside any complete
                            ///< round (bootstrap head, stopped tail).
};

/// Reconstructs rounds and their critical paths from a dataset.
/// Attribution semantics (docs/OBSERVABILITY.md has the full contract):
///   [start, calc_end]    -> kCalc;
///   [calc_end, avg_start]-> kMatchmake where a matchmake span covers
///                           the instant, kMatchmakeWait elsewhere;
///   [avg_start, end]     -> the covering net flow with the latest end
///                           time (ties: earliest recorded), kOverhead
///                           where no flow is in flight.
Result<RoundModel> BuildRoundModel(const TraceDataset& dataset);

}  // namespace hivesim::telemetry

#endif  // HIVESIM_TELEMETRY_ROUND_MODEL_H_
