#!/usr/bin/env bash
# Tier-1 verification plus static analysis and the sanitizer suite,
# exactly as CI runs it:
#   1. RelWithDebInfo build (preset "default", -Werror) + full ctest,
#   2. static analysis, before any sanitizer spend: `hivesim lint`
#      (determinism, concurrency & layering rules D1-D5/C1/S1/L1/P1
#      over the cross-TU call graph of every TU in
#      compile_commands.json; docs/STATIC_ANALYSIS.md), publishing a
#      machine-readable --json artifact and self-benchmarking its own
#      wall clock against a hard budget, then clang-tidy with the
#      committed .clang-tidy profile (skipped with a notice when
#      clang-tidy is not installed),
#   3. ASan/UBSan build (preset "asan", -Werror) + full ctest,
#   4. ThreadSanitizer build (preset "tsan", -Werror) running the
#      concurrency surface — sweep_test (thread pool, parallel cells,
#      aggregator) and telemetry_test (thread-local sink routing),
#      (every -Werror configure also promotes Clang's -Wthread-safety
#      over the annotations in common/thread_annotations.h; on GCC the
#      macros expand to nothing and `hivesim lint` rule C1 still gates
#      the annotation coverage),
#   5. a smoke run of the telemetry pipeline (trace_tour -> trace JSON ->
#      scripts/trace_summary.py) so the observability path stays healthy,
#   6. an analyze smoke: `hivesim analyze` over two identically seeded
#      trace_tour runs must produce byte-identical analysis.json
#      (docs/OBSERVABILITY.md's determinism contract),
#   7. a bounded chaos-fuzz soak (`hivesim fuzz`, fixed seed, wall-clock
#      capped): every generated world must pass the determinism oracle
#      set, then the committed regression reproducers under
#      tests/scenarios/ are replayed and must stay green
#      (docs/SCENARIOS.md),
#   8. a perf smoke: BM_Fleet/1000 (bench_fleet) runs once, bounded, so
#      a fleet-scale hang or determinism break surfaces before the full
#      gate spends time on the other areas,
#   9. the perf gate: the five gated bench binaries run with
#      --bench-json (each self-checks determinism first and exits
#      non-zero on divergence), then `hivesim perfgate` compares the
#      fresh BENCH_<area>.json artifacts against the committed baselines
#      in bench/baselines/ and fails loudly — with a before/after table —
#      on any regression past the per-bench threshold or any drift in a
#      deterministic check value. docs/PERFORMANCE.md describes the
#      workflow; HIVESIM_UPDATE_PERF_BASELINE=1 re-records the baselines
#      instead of comparing (the perf analogue of --update-golden).
set -euo pipefail
cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "=== tier-1: configure + build + test (preset: default, -Werror) ==="
cmake --preset default -DHIVESIM_WERROR=ON
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "=== lint: hivesim lint (D1-D5, C1, S1, L1, P1) ==="
# The analyzer lexes and call-graph-links every TU, so it is itself a
# perf-sensitive tool: fail the stage if the full-repo run blows its
# wall-clock budget (it takes well under a second today — the budget
# only catches an accidental quadratic blowup, not machine noise).
lint_budget_sec=30
lint_start="$(date +%s)"
./build/tools/hivesim lint \
  --root . --compile-commands build/compile_commands.json \
  --json="$tmpdir/lint.json"
lint_secs="$(( $(date +%s) - lint_start ))"
echo "lint artifact: $tmpdir/lint.json (hivesim-lint/1, ${lint_secs}s)"
if (( lint_secs > lint_budget_sec )); then
  echo "hivesim lint took ${lint_secs}s (budget ${lint_budget_sec}s):" >&2
  echo "the analyzer itself has a performance regression" >&2
  exit 1
fi

echo "=== lint: clang-tidy (.clang-tidy profile) ==="
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -quiet -p build "^$(pwd)/(src|tools|bench)/"
elif command -v clang-tidy > /dev/null 2>&1; then
  # shellcheck disable=SC2046 -- file list is intentionally word-split.
  clang-tidy --quiet -p build $(find src tools bench -name '*.cc' | sort)
else
  echo "clang-tidy not installed — skipping (hivesim lint above still"
  echo "gates the determinism/layering rules; install clang-tidy to run"
  echo "the bugprone/performance/concurrency profile locally)"
fi

echo "=== sanitizers: configure + build + test (preset: asan, -Werror) ==="
cmake --preset asan -DHIVESIM_WERROR=ON
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)"

echo "=== concurrency: configure + build + test (preset: tsan, -Werror) ==="
cmake --preset tsan -DHIVESIM_WERROR=ON
cmake --build --preset tsan -j "$(nproc)" --target sweep_test telemetry_test
ctest --preset tsan -j "$(nproc)" --tests-regex 'Sweep|ThreadPool|Telemetry'

echo "=== telemetry smoke: trace_tour -> trace_summary.py ==="
./build/examples/trace_tour --seed=7 \
  --trace-out="$tmpdir/tour.trace.json" \
  --metrics-out="$tmpdir/tour.metrics.json" > /dev/null
python3 scripts/trace_summary.py "$tmpdir/tour.trace.json" --top 5

echo "=== analyze smoke: byte-identical analysis across seeded reruns ==="
./build/tools/hivesim analyze --trace="$tmpdir/tour.trace.json" \
  --metrics="$tmpdir/tour.metrics.json" \
  --out="$tmpdir/tour.analysis.1.json" > /dev/null
./build/examples/trace_tour --seed=7 \
  --trace-out="$tmpdir/tour2.trace.json" \
  --metrics-out="$tmpdir/tour2.metrics.json" > /dev/null
./build/tools/hivesim analyze --trace="$tmpdir/tour2.trace.json" \
  --metrics="$tmpdir/tour2.metrics.json" \
  --out="$tmpdir/tour.analysis.2.json" > /dev/null
cmp "$tmpdir/tour.analysis.1.json" "$tmpdir/tour.analysis.2.json"

echo "=== fuzz soak: bounded chaos-fuzz campaign + regression replay ==="
# Fixed seed keeps the soak reproducible; --budget-sec only stops early
# on a slow machine (the campaign stays green either way).
./build/tools/hivesim fuzz --seed 1 --runs 1500 --budget-sec 30 \
  --sim-minutes 30 --max-events 8
./build/tools/hivesim fuzz --replay-dir tests/scenarios

echo "=== perf smoke: BM_Fleet/1000 bounded sanity run ==="
cmake --build --preset default -j "$(nproc)" --target bench_fleet
# One bounded pass of the smallest fleet world: exercises the SoA solver
# slabs and cohort dispatch end to end (the binary's determinism
# self-check runs first and exits non-zero on divergence).
./build/bench/bench_fleet --benchmark_filter='BM_Fleet/1000$' \
  --benchmark_min_time=1x > /dev/null

echo "=== perf gate: benches --bench-json vs bench/baselines ==="
cmake --build --preset default -j "$(nproc)" \
  --target bench_kernel_net bench_kernel_sim bench_sec7_chaos \
  bench_fig3_tbs_throughput bench_fleet hivesim
perfdir="$tmpdir/perf"
mkdir -p "$perfdir"
./build/bench/bench_kernel_net --benchmark_min_time=0.1s \
  --bench-json="$perfdir/BENCH_kernel_net.json" > /dev/null
./build/bench/bench_kernel_sim --benchmark_min_time=0.1s \
  --bench-json="$perfdir/BENCH_kernel_sim.json" > /dev/null
./build/bench/bench_sec7_chaos --benchmark_min_time=0.1s \
  --bench-json="$perfdir/BENCH_chaos.json" > /dev/null
./build/bench/bench_fig3_tbs_throughput --benchmark_min_time=0.1s \
  --bench-json="$perfdir/BENCH_fig3.json" > /dev/null
# The 100k-peer arg is the scalability headline, not a CI gate: gate on
# the 1k/10k worlds so the stage stays bounded on shared runners.
./build/bench/bench_fleet --benchmark_filter='BM_Fleet/(1000|10000)$' \
  --benchmark_min_time=0.1s \
  --bench-json="$perfdir/BENCH_fleet.json" > /dev/null
if [[ "${HIVESIM_UPDATE_PERF_BASELINE:-0}" == "1" ]]; then
  ./build/tools/hivesim perfgate --current-dir="$perfdir" \
    --baseline-dir=bench/baselines --update
  echo "perf baselines re-recorded; review and commit bench/baselines/"
else
  ./build/tools/hivesim perfgate --current-dir="$perfdir" \
    --baseline-dir=bench/baselines
fi

echo "=== ci.sh: all green ==="
