#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer suite, exactly as CI runs it:
#   1. RelWithDebInfo build (preset "default") + full ctest,
#   2. ASan/UBSan build (preset "asan") + full ctest under sanitizers,
#   3. ThreadSanitizer build (preset "tsan") running the concurrency
#      surface — sweep_test (thread pool, parallel cells, aggregator) and
#      telemetry_test (thread-local sink routing),
#   4. a smoke run of the telemetry pipeline (trace_tour -> trace JSON ->
#      scripts/trace_summary.py) so the observability path stays healthy,
#   5. a perf smoke: the two simulation-kernel microbenchmarks run
#      briefly from the optimized build. Each binary self-checks
#      determinism first (two identically seeded churn runs must match
#      exactly) and exits non-zero on divergence or crash, so solver and
#      event-pool regressions fail CI here.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: configure + build + test (preset: default) ==="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "=== sanitizers: configure + build + test (preset: asan) ==="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)"

echo "=== concurrency: configure + build + test (preset: tsan) ==="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target sweep_test telemetry_test
ctest --preset tsan -j "$(nproc)" --tests-regex 'Sweep|ThreadPool|Telemetry'

echo "=== telemetry smoke: trace_tour -> trace_summary.py ==="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./build/examples/trace_tour --seed=7 \
  --trace-out="$tmpdir/tour.trace.json" \
  --metrics-out="$tmpdir/tour.metrics.json" > /dev/null
python3 scripts/trace_summary.py "$tmpdir/tour.trace.json" --top 5

echo "=== perf smoke: kernel benches (determinism + crash check) ==="
cmake --build --preset default -j "$(nproc)" \
  --target bench_kernel_net bench_kernel_sim
./build/bench/bench_kernel_net --benchmark_min_time=0.1s > /dev/null
./build/bench/bench_kernel_sim --benchmark_min_time=0.1s > /dev/null

echo "=== ci.sh: all green ==="
