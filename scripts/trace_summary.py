#!/usr/bin/env python3
"""Summarize a hivesim Chrome trace: top spans by total simulated time.

Usage:
    python3 scripts/trace_summary.py trace_tour.trace.json [--top N]
                                     [--lane LANE]

Reads the Chrome `trace_event` JSON written by `--trace-out=` (CLI,
benches) or examples/trace_tour, aggregates the "X" (complete) spans by
(lane, name), and prints the top N rows by total duration. Instant
events are tallied separately. Pure stdlib; output order is
deterministic (duration desc, then lane/name asc) so it can be diffed
across runs.
"""

import argparse
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    lanes = {}  # tid -> lane name, from thread_name metadata.
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            lanes[ev.get("tid")] = ev.get("args", {}).get("name", "?")
    return events, lanes


def summarize(events, lanes, lane_filter=None):
    spans = {}  # (lane, name) -> [count, total_us, max_us]
    instants = {}  # (lane, name) -> count
    for ev in events:
        lane = lanes.get(ev.get("tid"), str(ev.get("tid")))
        if lane_filter and lane != lane_filter:
            continue
        key = (lane, ev.get("name", "?"))
        if ev.get("ph") == "X":
            entry = spans.setdefault(key, [0, 0.0, 0.0])
            dur = float(ev.get("dur", 0.0))
            entry[0] += 1
            entry[1] += dur
            entry[2] = max(entry[2], dur)
        elif ev.get("ph") == "i":
            instants[key] = instants.get(key, 0) + 1
    return spans, instants


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON file")
    parser.add_argument("--top", type=int, default=15,
                        help="rows to print (default 15)")
    parser.add_argument("--lane", default=None,
                        help="only spans on this lane (e.g. trainer)")
    args = parser.parse_args()

    try:
        events, lanes = load_events(args.trace)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 1

    spans, instants = summarize(events, lanes, args.lane)
    if not spans and not instants:
        print("no span or instant events found", file=sys.stderr)
        return 1

    ranked = sorted(spans.items(), key=lambda kv: (-kv[1][1], kv[0]))
    print(f"{'lane':<14} {'span':<28} {'count':>6} "
          f"{'total_s':>10} {'mean_s':>9} {'max_s':>9}")
    for (lane, name), (count, total_us, max_us) in ranked[:args.top]:
        print(f"{lane:<14} {name:<28} {count:>6} "
              f"{total_us / 1e6:>10.1f} {total_us / 1e6 / count:>9.2f} "
              f"{max_us / 1e6:>9.2f}")
    if len(ranked) > args.top:
        print(f"... {len(ranked) - args.top} more span series")

    if instants:
        print()
        print(f"{'lane':<14} {'instant':<28} {'count':>6}")
        for (lane, name), count in sorted(
                instants.items(), key=lambda kv: (-kv[1], kv[0]))[:args.top]:
            print(f"{lane:<14} {name:<28} {count:>6}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
