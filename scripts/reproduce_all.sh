#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# table and figure of the paper (outputs land next to this script's repo
# root as test_output.txt and bench_output.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "### $(basename "$b")"
    "$b" --benchmark_min_time=1x
  fi
done 2>&1 | tee bench_output.txt
