#!/usr/bin/env bash
# Builds the project, runs the full test suite, regenerates every table
# and figure of the paper, and re-runs the headline figure *grids* as
# concurrent sweeps. Outputs land next to this script's repo root as
# test_output.txt, bench_output.txt, and results/sweeps/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "### $(basename "$b")"
    "$b" --benchmark_min_time=1x
  fi
done 2>&1 | tee bench_output.txt

# The figure grids once more as sweeps: every cell an independent
# simulation on a thread pool, outputs byte-identical to --threads 1
# (proven continuously by tests/sweep_test.cc; see docs/SWEEPS.md).
SWEEP=build/tools/hivesim
THREADS="$(nproc)"
OUT=results/sweeps

echo "### sweep: Fig. 3 suitability grid (models x TBS on 2xA10)"
"$SWEEP" sweep --title "fig3 suitability" --fleets "lambda:2" \
  --models suitability --tbs 8192,16384,32768 --hours 1 \
  --threads "$THREADS" --out "$OUT/fig3"

echo "### sweep: Figs. 7-10 scalability series (A/B/C/D, both models)"
"$SWEEP" sweep --title "figs7-10 scalability" --series A,B,C,D \
  --models CONV,RXLM --threads "$THREADS" --out "$OUT/figs7_10"

echo "### sweep: Section 7 chaos matrix (C series under every preset)"
"$SWEEP" sweep --title "sec7 chaos" --series C \
  --chaos none,wan-degrade,partition,churn --telemetry \
  --threads "$THREADS" --out "$OUT/sec7_chaos"
