# Empty dependencies file for migrator_test.
# This may be replaced when dependencies are built.
