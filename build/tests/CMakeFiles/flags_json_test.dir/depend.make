# Empty dependencies file for flags_json_test.
# This may be replaced when dependencies are built.
