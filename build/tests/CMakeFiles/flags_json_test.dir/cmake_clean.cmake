file(REMOVE_RECURSE
  "CMakeFiles/flags_json_test.dir/flags_json_test.cc.o"
  "CMakeFiles/flags_json_test.dir/flags_json_test.cc.o.d"
  "flags_json_test"
  "flags_json_test.pdb"
  "flags_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flags_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
