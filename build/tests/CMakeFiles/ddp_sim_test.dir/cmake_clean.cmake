file(REMOVE_RECURSE
  "CMakeFiles/ddp_sim_test.dir/ddp_sim_test.cc.o"
  "CMakeFiles/ddp_sim_test.dir/ddp_sim_test.cc.o.d"
  "ddp_sim_test"
  "ddp_sim_test.pdb"
  "ddp_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
