file(REMOVE_RECURSE
  "CMakeFiles/hivemind_test.dir/hivemind_test.cc.o"
  "CMakeFiles/hivemind_test.dir/hivemind_test.cc.o.d"
  "hivemind_test"
  "hivemind_test.pdb"
  "hivemind_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivemind_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
