# Empty compiler generated dependencies file for hivemind_test.
# This may be replaced when dependencies are built.
