
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog_sweep_test.cc" "tests/CMakeFiles/catalog_sweep_test.dir/catalog_sweep_test.cc.o" "gcc" "tests/CMakeFiles/catalog_sweep_test.dir/catalog_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hivesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hivesim_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/hivemind/CMakeFiles/hivesim_hivemind.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/hivesim_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hivesim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/hivesim_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hivesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hivesim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hivesim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/hivesim_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hivesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
