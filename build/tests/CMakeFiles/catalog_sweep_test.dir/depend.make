# Empty dependencies file for catalog_sweep_test.
# This may be replaced when dependencies are built.
