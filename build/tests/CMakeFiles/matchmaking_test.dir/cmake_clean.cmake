file(REMOVE_RECURSE
  "CMakeFiles/matchmaking_test.dir/matchmaking_test.cc.o"
  "CMakeFiles/matchmaking_test.dir/matchmaking_test.cc.o.d"
  "matchmaking_test"
  "matchmaking_test.pdb"
  "matchmaking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matchmaking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
