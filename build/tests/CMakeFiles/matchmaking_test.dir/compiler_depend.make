# Empty compiler generated dependencies file for matchmaking_test.
# This may be replaced when dependencies are built.
