# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/hivemind_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/migrator_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/flags_json_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/matchmaking_test[1]_include.cmake")
include("/root/repo/build/tests/ddp_sim_test[1]_include.cmake")
