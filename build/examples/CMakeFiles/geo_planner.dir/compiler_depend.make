# Empty compiler generated dependencies file for geo_planner.
# This may be replaced when dependencies are built.
