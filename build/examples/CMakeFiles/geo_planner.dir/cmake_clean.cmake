file(REMOVE_RECURSE
  "CMakeFiles/geo_planner.dir/geo_planner.cc.o"
  "CMakeFiles/geo_planner.dir/geo_planner.cc.o.d"
  "geo_planner"
  "geo_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
