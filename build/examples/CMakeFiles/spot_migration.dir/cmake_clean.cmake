file(REMOVE_RECURSE
  "CMakeFiles/spot_migration.dir/spot_migration.cc.o"
  "CMakeFiles/spot_migration.dir/spot_migration.cc.o.d"
  "spot_migration"
  "spot_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
