# Empty compiler generated dependencies file for spot_migration.
# This may be replaced when dependencies are built.
