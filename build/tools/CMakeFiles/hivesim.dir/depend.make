# Empty dependencies file for hivesim.
# This may be replaced when dependencies are built.
