file(REMOVE_RECURSE
  "CMakeFiles/hivesim.dir/hivesim_cli.cc.o"
  "CMakeFiles/hivesim.dir/hivesim_cli.cc.o.d"
  "hivesim"
  "hivesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
