# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tools/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/baselines" TYPE FILE FILES "/root/repo/src/baselines/baselines.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/baselines" TYPE FILE FILES "/root/repo/src/baselines/ddp_sim.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/cloud" TYPE FILE FILES "/root/repo/src/cloud/cost.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/cloud" TYPE FILE FILES "/root/repo/src/cloud/pricing.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/cloud" TYPE FILE FILES "/root/repo/src/cloud/provisioner.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/cloud" TYPE FILE FILES "/root/repo/src/cloud/spot_market.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/cloud" TYPE FILE FILES "/root/repo/src/cloud/vm.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/collective" TYPE FILE FILES "/root/repo/src/collective/allreduce.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/flags.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/json.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/logging.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/result.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/rng.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/status.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/strings.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/table_writer.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/common" TYPE FILE FILES "/root/repo/src/common/units.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/compute" TYPE FILE FILES "/root/repo/src/compute/gpu.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/compute" TYPE FILE FILES "/root/repo/src/compute/host.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/advisor.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/catalog.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/cluster.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/experiment.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/granularity.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/migrator.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/predictor.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/core" TYPE FILE FILES "/root/repo/src/core/report.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/data" TYPE FILE FILES "/root/repo/src/data/loader.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/data" TYPE FILE FILES "/root/repo/src/data/shard.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/data" TYPE FILE FILES "/root/repo/src/data/synthetic.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/data" TYPE FILE FILES "/root/repo/src/data/tar.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/dht" TYPE FILE FILES "/root/repo/src/dht/dht.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/hivemind" TYPE FILE FILES "/root/repo/src/hivemind/matchmaking.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/hivemind" TYPE FILE FILES "/root/repo/src/hivemind/monitor.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/hivemind" TYPE FILE FILES "/root/repo/src/hivemind/progress_board.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/hivemind" TYPE FILE FILES "/root/repo/src/hivemind/trainer.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/models" TYPE FILE FILES "/root/repo/src/models/calibration.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/models" TYPE FILE FILES "/root/repo/src/models/memory.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/models" TYPE FILE FILES "/root/repo/src/models/model_zoo.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/net" TYPE FILE FILES "/root/repo/src/net/location.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/net" TYPE FILE FILES "/root/repo/src/net/network.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/net" TYPE FILE FILES "/root/repo/src/net/profiler.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/net" TYPE FILE FILES "/root/repo/src/net/profiles.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/net" TYPE FILE FILES "/root/repo/src/net/topology.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/hivesim/sim" TYPE FILE FILES "/root/repo/src/sim/simulator.h")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/common/libhivesim_common.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libhivesim_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/net/libhivesim_net.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/compute/libhivesim_compute.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/models/libhivesim_models.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cloud/libhivesim_cloud.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/data/libhivesim_data.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/dht/libhivesim_dht.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/collective/libhivesim_collective.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/hivemind/libhivesim_hivemind.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/baselines/libhivesim_baselines.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libhivesim_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/tools/hivesim")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/hivesim")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
