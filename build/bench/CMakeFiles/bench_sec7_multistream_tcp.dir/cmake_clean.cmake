file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_multistream_tcp.dir/bench_sec7_multistream_tcp.cc.o"
  "CMakeFiles/bench_sec7_multistream_tcp.dir/bench_sec7_multistream_tcp.cc.o.d"
  "bench_sec7_multistream_tcp"
  "bench_sec7_multistream_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_multistream_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
