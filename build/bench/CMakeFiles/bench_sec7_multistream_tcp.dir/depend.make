# Empty dependencies file for bench_sec7_multistream_tcp.
# This may be replaced when dependencies are built.
