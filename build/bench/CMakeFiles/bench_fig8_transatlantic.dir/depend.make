# Empty dependencies file for bench_fig8_transatlantic.
# This may be replaced when dependencies are built.
