file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_transatlantic.dir/bench_fig8_transatlantic.cc.o"
  "CMakeFiles/bench_fig8_transatlantic.dir/bench_fig8_transatlantic.cc.o.d"
  "bench_fig8_transatlantic"
  "bench_fig8_transatlantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_transatlantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
