file(REMOVE_RECURSE
  "CMakeFiles/hivesim_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/hivesim_bench_util.dir/bench_util.cc.o.d"
  "libhivesim_bench_util.a"
  "libhivesim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
