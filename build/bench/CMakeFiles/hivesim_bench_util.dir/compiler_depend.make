# Empty compiler generated dependencies file for hivesim_bench_util.
# This may be replaced when dependencies are built.
