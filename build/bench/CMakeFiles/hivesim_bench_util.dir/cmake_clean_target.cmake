file(REMOVE_RECURSE
  "libhivesim_bench_util.a"
)
