# Empty compiler generated dependencies file for bench_table4_multicloud_network.
# This may be replaced when dependencies are built.
