file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_multicloud_network.dir/bench_table4_multicloud_network.cc.o"
  "CMakeFiles/bench_table4_multicloud_network.dir/bench_table4_multicloud_network.cc.o.d"
  "bench_table4_multicloud_network"
  "bench_table4_multicloud_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_multicloud_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
