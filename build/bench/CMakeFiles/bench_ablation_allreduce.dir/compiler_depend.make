# Empty compiler generated dependencies file for bench_ablation_allreduce.
# This may be replaced when dependencies are built.
