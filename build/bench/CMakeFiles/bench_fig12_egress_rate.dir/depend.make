# Empty dependencies file for bench_fig12_egress_rate.
# This may be replaced when dependencies are built.
