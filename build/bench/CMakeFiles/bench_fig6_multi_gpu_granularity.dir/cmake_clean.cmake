file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multi_gpu_granularity.dir/bench_fig6_multi_gpu_granularity.cc.o"
  "CMakeFiles/bench_fig6_multi_gpu_granularity.dir/bench_fig6_multi_gpu_granularity.cc.o.d"
  "bench_fig6_multi_gpu_granularity"
  "bench_fig6_multi_gpu_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multi_gpu_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
