# Empty compiler generated dependencies file for bench_fig6_multi_gpu_granularity.
# This may be replaced when dependencies are built.
