file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_intra_zone.dir/bench_fig7_intra_zone.cc.o"
  "CMakeFiles/bench_fig7_intra_zone.dir/bench_fig7_intra_zone.cc.o.d"
  "bench_fig7_intra_zone"
  "bench_fig7_intra_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_intra_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
