# Empty compiler generated dependencies file for bench_fig7_intra_zone.
# This may be replaced when dependencies are built.
