file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gc_network.dir/bench_table3_gc_network.cc.o"
  "CMakeFiles/bench_table3_gc_network.dir/bench_table3_gc_network.cc.o.d"
  "bench_table3_gc_network"
  "bench_table3_gc_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
