# Empty dependencies file for bench_table3_gc_network.
# This may be replaced when dependencies are built.
