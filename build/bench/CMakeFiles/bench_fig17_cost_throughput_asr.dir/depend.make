# Empty dependencies file for bench_fig17_cost_throughput_asr.
# This may be replaced when dependencies are built.
