file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_cost_throughput_asr.dir/bench_fig17_cost_throughput_asr.cc.o"
  "CMakeFiles/bench_fig17_cost_throughput_asr.dir/bench_fig17_cost_throughput_asr.cc.o.d"
  "bench_fig17_cost_throughput_asr"
  "bench_fig17_cost_throughput_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cost_throughput_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
