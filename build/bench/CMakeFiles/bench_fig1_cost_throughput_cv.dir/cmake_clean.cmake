file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_cost_throughput_cv.dir/bench_fig1_cost_throughput_cv.cc.o"
  "CMakeFiles/bench_fig1_cost_throughput_cv.dir/bench_fig1_cost_throughput_cv.cc.o.d"
  "bench_fig1_cost_throughput_cv"
  "bench_fig1_cost_throughput_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_cost_throughput_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
