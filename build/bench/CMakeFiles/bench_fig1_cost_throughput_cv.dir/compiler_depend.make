# Empty compiler generated dependencies file for bench_fig1_cost_throughput_cv.
# This may be replaced when dependencies are built.
