# Empty dependencies file for bench_table5_hybrid_network.
# This may be replaced when dependencies are built.
