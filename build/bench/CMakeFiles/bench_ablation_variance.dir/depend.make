# Empty dependencies file for bench_ablation_variance.
# This may be replaced when dependencies are built.
