file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_variance.dir/bench_ablation_variance.cc.o"
  "CMakeFiles/bench_ablation_variance.dir/bench_ablation_variance.cc.o.d"
  "bench_ablation_variance"
  "bench_ablation_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
