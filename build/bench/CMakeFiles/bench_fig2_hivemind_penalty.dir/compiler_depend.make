# Empty compiler generated dependencies file for bench_fig2_hivemind_penalty.
# This may be replaced when dependencies are built.
