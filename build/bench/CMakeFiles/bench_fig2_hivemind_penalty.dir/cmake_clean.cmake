file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hivemind_penalty.dir/bench_fig2_hivemind_penalty.cc.o"
  "CMakeFiles/bench_fig2_hivemind_penalty.dir/bench_fig2_hivemind_penalty.cc.o.d"
  "bench_fig2_hivemind_penalty"
  "bench_fig2_hivemind_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hivemind_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
