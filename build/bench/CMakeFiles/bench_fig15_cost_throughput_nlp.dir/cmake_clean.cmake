file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cost_throughput_nlp.dir/bench_fig15_cost_throughput_nlp.cc.o"
  "CMakeFiles/bench_fig15_cost_throughput_nlp.dir/bench_fig15_cost_throughput_nlp.cc.o.d"
  "bench_fig15_cost_throughput_nlp"
  "bench_fig15_cost_throughput_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cost_throughput_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
