# Empty compiler generated dependencies file for bench_fig15_cost_throughput_nlp.
# This may be replaced when dependencies are built.
