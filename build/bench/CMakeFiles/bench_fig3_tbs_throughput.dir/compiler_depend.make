# Empty compiler generated dependencies file for bench_fig3_tbs_throughput.
# This may be replaced when dependencies are built.
