# Empty dependencies file for bench_fig16_whisper_tbs.
# This may be replaced when dependencies are built.
