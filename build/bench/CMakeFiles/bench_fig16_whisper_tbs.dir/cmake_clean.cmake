file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_whisper_tbs.dir/bench_fig16_whisper_tbs.cc.o"
  "CMakeFiles/bench_fig16_whisper_tbs.dir/bench_fig16_whisper_tbs.cc.o.d"
  "bench_fig16_whisper_tbs"
  "bench_fig16_whisper_tbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_whisper_tbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
