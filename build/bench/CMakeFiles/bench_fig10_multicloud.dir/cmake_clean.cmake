file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multicloud.dir/bench_fig10_multicloud.cc.o"
  "CMakeFiles/bench_fig10_multicloud.dir/bench_fig10_multicloud.cc.o.d"
  "bench_fig10_multicloud"
  "bench_fig10_multicloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multicloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
