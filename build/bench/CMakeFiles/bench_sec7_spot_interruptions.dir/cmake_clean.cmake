file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_spot_interruptions.dir/bench_sec7_spot_interruptions.cc.o"
  "CMakeFiles/bench_sec7_spot_interruptions.dir/bench_sec7_spot_interruptions.cc.o.d"
  "bench_sec7_spot_interruptions"
  "bench_sec7_spot_interruptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_spot_interruptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
