# Empty dependencies file for bench_sec7_spot_interruptions.
# This may be replaced when dependencies are built.
