file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_hybrid_consumer.dir/bench_fig13_hybrid_consumer.cc.o"
  "CMakeFiles/bench_fig13_hybrid_consumer.dir/bench_fig13_hybrid_consumer.cc.o.d"
  "bench_fig13_hybrid_consumer"
  "bench_fig13_hybrid_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_hybrid_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
