# Empty compiler generated dependencies file for bench_fig13_hybrid_consumer.
# This may be replaced when dependencies are built.
