file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_intercontinental.dir/bench_fig9_intercontinental.cc.o"
  "CMakeFiles/bench_fig9_intercontinental.dir/bench_fig9_intercontinental.cc.o.d"
  "bench_fig9_intercontinental"
  "bench_fig9_intercontinental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_intercontinental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
