# Empty dependencies file for bench_fig9_intercontinental.
# This may be replaced when dependencies are built.
