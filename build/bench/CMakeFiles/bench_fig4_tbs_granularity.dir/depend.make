# Empty dependencies file for bench_fig4_tbs_granularity.
# This may be replaced when dependencies are built.
