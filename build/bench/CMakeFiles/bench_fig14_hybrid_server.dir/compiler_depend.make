# Empty compiler generated dependencies file for bench_fig14_hybrid_server.
# This may be replaced when dependencies are built.
