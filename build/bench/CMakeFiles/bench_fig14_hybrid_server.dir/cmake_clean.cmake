file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hybrid_server.dir/bench_fig14_hybrid_server.cc.o"
  "CMakeFiles/bench_fig14_hybrid_server.dir/bench_fig14_hybrid_server.cc.o.d"
  "bench_fig14_hybrid_server"
  "bench_fig14_hybrid_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hybrid_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
