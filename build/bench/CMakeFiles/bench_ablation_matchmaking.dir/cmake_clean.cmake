file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_matchmaking.dir/bench_ablation_matchmaking.cc.o"
  "CMakeFiles/bench_ablation_matchmaking.dir/bench_ablation_matchmaking.cc.o.d"
  "bench_ablation_matchmaking"
  "bench_ablation_matchmaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_matchmaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
