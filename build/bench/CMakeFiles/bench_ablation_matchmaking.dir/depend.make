# Empty dependencies file for bench_ablation_matchmaking.
# This may be replaced when dependencies are built.
