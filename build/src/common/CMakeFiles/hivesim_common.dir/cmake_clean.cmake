file(REMOVE_RECURSE
  "CMakeFiles/hivesim_common.dir/flags.cc.o"
  "CMakeFiles/hivesim_common.dir/flags.cc.o.d"
  "CMakeFiles/hivesim_common.dir/json.cc.o"
  "CMakeFiles/hivesim_common.dir/json.cc.o.d"
  "CMakeFiles/hivesim_common.dir/logging.cc.o"
  "CMakeFiles/hivesim_common.dir/logging.cc.o.d"
  "CMakeFiles/hivesim_common.dir/status.cc.o"
  "CMakeFiles/hivesim_common.dir/status.cc.o.d"
  "CMakeFiles/hivesim_common.dir/strings.cc.o"
  "CMakeFiles/hivesim_common.dir/strings.cc.o.d"
  "CMakeFiles/hivesim_common.dir/table_writer.cc.o"
  "CMakeFiles/hivesim_common.dir/table_writer.cc.o.d"
  "CMakeFiles/hivesim_common.dir/units.cc.o"
  "CMakeFiles/hivesim_common.dir/units.cc.o.d"
  "libhivesim_common.a"
  "libhivesim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
