# Empty dependencies file for hivesim_common.
# This may be replaced when dependencies are built.
