file(REMOVE_RECURSE
  "libhivesim_common.a"
)
