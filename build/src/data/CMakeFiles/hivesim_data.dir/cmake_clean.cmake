file(REMOVE_RECURSE
  "CMakeFiles/hivesim_data.dir/loader.cc.o"
  "CMakeFiles/hivesim_data.dir/loader.cc.o.d"
  "CMakeFiles/hivesim_data.dir/shard.cc.o"
  "CMakeFiles/hivesim_data.dir/shard.cc.o.d"
  "CMakeFiles/hivesim_data.dir/synthetic.cc.o"
  "CMakeFiles/hivesim_data.dir/synthetic.cc.o.d"
  "CMakeFiles/hivesim_data.dir/tar.cc.o"
  "CMakeFiles/hivesim_data.dir/tar.cc.o.d"
  "libhivesim_data.a"
  "libhivesim_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
