
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/loader.cc" "src/data/CMakeFiles/hivesim_data.dir/loader.cc.o" "gcc" "src/data/CMakeFiles/hivesim_data.dir/loader.cc.o.d"
  "/root/repo/src/data/shard.cc" "src/data/CMakeFiles/hivesim_data.dir/shard.cc.o" "gcc" "src/data/CMakeFiles/hivesim_data.dir/shard.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/hivesim_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/hivesim_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/tar.cc" "src/data/CMakeFiles/hivesim_data.dir/tar.cc.o" "gcc" "src/data/CMakeFiles/hivesim_data.dir/tar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hivesim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/hivesim_compute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
