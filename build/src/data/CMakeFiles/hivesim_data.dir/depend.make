# Empty dependencies file for hivesim_data.
# This may be replaced when dependencies are built.
