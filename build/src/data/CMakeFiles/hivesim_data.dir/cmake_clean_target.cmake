file(REMOVE_RECURSE
  "libhivesim_data.a"
)
