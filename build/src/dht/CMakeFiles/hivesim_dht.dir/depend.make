# Empty dependencies file for hivesim_dht.
# This may be replaced when dependencies are built.
