file(REMOVE_RECURSE
  "CMakeFiles/hivesim_dht.dir/dht.cc.o"
  "CMakeFiles/hivesim_dht.dir/dht.cc.o.d"
  "libhivesim_dht.a"
  "libhivesim_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
