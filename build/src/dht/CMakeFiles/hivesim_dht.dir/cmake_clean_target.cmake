file(REMOVE_RECURSE
  "libhivesim_dht.a"
)
