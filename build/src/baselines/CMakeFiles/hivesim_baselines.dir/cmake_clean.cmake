file(REMOVE_RECURSE
  "CMakeFiles/hivesim_baselines.dir/baselines.cc.o"
  "CMakeFiles/hivesim_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/hivesim_baselines.dir/ddp_sim.cc.o"
  "CMakeFiles/hivesim_baselines.dir/ddp_sim.cc.o.d"
  "libhivesim_baselines.a"
  "libhivesim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
