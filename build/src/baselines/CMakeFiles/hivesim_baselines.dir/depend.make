# Empty dependencies file for hivesim_baselines.
# This may be replaced when dependencies are built.
