file(REMOVE_RECURSE
  "libhivesim_baselines.a"
)
