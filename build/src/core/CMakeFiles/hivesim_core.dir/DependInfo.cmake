
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/hivesim_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/hivesim_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/hivesim_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/hivesim_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/granularity.cc" "src/core/CMakeFiles/hivesim_core.dir/granularity.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/granularity.cc.o.d"
  "/root/repo/src/core/migrator.cc" "src/core/CMakeFiles/hivesim_core.dir/migrator.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/migrator.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/hivesim_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/hivesim_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/hivesim_core.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hivesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hivesim_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hivesim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/hivemind/CMakeFiles/hivesim_hivemind.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hivesim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/hivesim_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hivesim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/hivesim_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/hivesim_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hivesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
