file(REMOVE_RECURSE
  "libhivesim_core.a"
)
