file(REMOVE_RECURSE
  "CMakeFiles/hivesim_core.dir/advisor.cc.o"
  "CMakeFiles/hivesim_core.dir/advisor.cc.o.d"
  "CMakeFiles/hivesim_core.dir/catalog.cc.o"
  "CMakeFiles/hivesim_core.dir/catalog.cc.o.d"
  "CMakeFiles/hivesim_core.dir/cluster.cc.o"
  "CMakeFiles/hivesim_core.dir/cluster.cc.o.d"
  "CMakeFiles/hivesim_core.dir/experiment.cc.o"
  "CMakeFiles/hivesim_core.dir/experiment.cc.o.d"
  "CMakeFiles/hivesim_core.dir/granularity.cc.o"
  "CMakeFiles/hivesim_core.dir/granularity.cc.o.d"
  "CMakeFiles/hivesim_core.dir/migrator.cc.o"
  "CMakeFiles/hivesim_core.dir/migrator.cc.o.d"
  "CMakeFiles/hivesim_core.dir/predictor.cc.o"
  "CMakeFiles/hivesim_core.dir/predictor.cc.o.d"
  "CMakeFiles/hivesim_core.dir/report.cc.o"
  "CMakeFiles/hivesim_core.dir/report.cc.o.d"
  "libhivesim_core.a"
  "libhivesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
