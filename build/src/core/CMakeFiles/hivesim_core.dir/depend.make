# Empty dependencies file for hivesim_core.
# This may be replaced when dependencies are built.
