# Empty compiler generated dependencies file for hivesim_net.
# This may be replaced when dependencies are built.
