file(REMOVE_RECURSE
  "libhivesim_net.a"
)
