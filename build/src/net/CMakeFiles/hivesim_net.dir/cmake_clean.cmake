file(REMOVE_RECURSE
  "CMakeFiles/hivesim_net.dir/location.cc.o"
  "CMakeFiles/hivesim_net.dir/location.cc.o.d"
  "CMakeFiles/hivesim_net.dir/network.cc.o"
  "CMakeFiles/hivesim_net.dir/network.cc.o.d"
  "CMakeFiles/hivesim_net.dir/profiler.cc.o"
  "CMakeFiles/hivesim_net.dir/profiler.cc.o.d"
  "CMakeFiles/hivesim_net.dir/profiles.cc.o"
  "CMakeFiles/hivesim_net.dir/profiles.cc.o.d"
  "CMakeFiles/hivesim_net.dir/topology.cc.o"
  "CMakeFiles/hivesim_net.dir/topology.cc.o.d"
  "libhivesim_net.a"
  "libhivesim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
