
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/location.cc" "src/net/CMakeFiles/hivesim_net.dir/location.cc.o" "gcc" "src/net/CMakeFiles/hivesim_net.dir/location.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/hivesim_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/hivesim_net.dir/network.cc.o.d"
  "/root/repo/src/net/profiler.cc" "src/net/CMakeFiles/hivesim_net.dir/profiler.cc.o" "gcc" "src/net/CMakeFiles/hivesim_net.dir/profiler.cc.o.d"
  "/root/repo/src/net/profiles.cc" "src/net/CMakeFiles/hivesim_net.dir/profiles.cc.o" "gcc" "src/net/CMakeFiles/hivesim_net.dir/profiles.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/hivesim_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/hivesim_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hivesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
