file(REMOVE_RECURSE
  "libhivesim_collective.a"
)
