file(REMOVE_RECURSE
  "CMakeFiles/hivesim_collective.dir/allreduce.cc.o"
  "CMakeFiles/hivesim_collective.dir/allreduce.cc.o.d"
  "libhivesim_collective.a"
  "libhivesim_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
