# Empty compiler generated dependencies file for hivesim_collective.
# This may be replaced when dependencies are built.
