file(REMOVE_RECURSE
  "libhivesim_models.a"
)
