# Empty dependencies file for hivesim_models.
# This may be replaced when dependencies are built.
