file(REMOVE_RECURSE
  "CMakeFiles/hivesim_models.dir/calibration.cc.o"
  "CMakeFiles/hivesim_models.dir/calibration.cc.o.d"
  "CMakeFiles/hivesim_models.dir/memory.cc.o"
  "CMakeFiles/hivesim_models.dir/memory.cc.o.d"
  "CMakeFiles/hivesim_models.dir/model_zoo.cc.o"
  "CMakeFiles/hivesim_models.dir/model_zoo.cc.o.d"
  "libhivesim_models.a"
  "libhivesim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
