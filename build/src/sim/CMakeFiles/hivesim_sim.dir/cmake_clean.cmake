file(REMOVE_RECURSE
  "CMakeFiles/hivesim_sim.dir/simulator.cc.o"
  "CMakeFiles/hivesim_sim.dir/simulator.cc.o.d"
  "libhivesim_sim.a"
  "libhivesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
