file(REMOVE_RECURSE
  "libhivesim_sim.a"
)
