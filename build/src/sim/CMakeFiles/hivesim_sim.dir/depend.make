# Empty dependencies file for hivesim_sim.
# This may be replaced when dependencies are built.
