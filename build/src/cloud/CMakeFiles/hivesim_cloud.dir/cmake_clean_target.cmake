file(REMOVE_RECURSE
  "libhivesim_cloud.a"
)
