
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/cost.cc" "src/cloud/CMakeFiles/hivesim_cloud.dir/cost.cc.o" "gcc" "src/cloud/CMakeFiles/hivesim_cloud.dir/cost.cc.o.d"
  "/root/repo/src/cloud/pricing.cc" "src/cloud/CMakeFiles/hivesim_cloud.dir/pricing.cc.o" "gcc" "src/cloud/CMakeFiles/hivesim_cloud.dir/pricing.cc.o.d"
  "/root/repo/src/cloud/provisioner.cc" "src/cloud/CMakeFiles/hivesim_cloud.dir/provisioner.cc.o" "gcc" "src/cloud/CMakeFiles/hivesim_cloud.dir/provisioner.cc.o.d"
  "/root/repo/src/cloud/spot_market.cc" "src/cloud/CMakeFiles/hivesim_cloud.dir/spot_market.cc.o" "gcc" "src/cloud/CMakeFiles/hivesim_cloud.dir/spot_market.cc.o.d"
  "/root/repo/src/cloud/vm.cc" "src/cloud/CMakeFiles/hivesim_cloud.dir/vm.cc.o" "gcc" "src/cloud/CMakeFiles/hivesim_cloud.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/hivesim_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hivesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hivesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
