file(REMOVE_RECURSE
  "CMakeFiles/hivesim_cloud.dir/cost.cc.o"
  "CMakeFiles/hivesim_cloud.dir/cost.cc.o.d"
  "CMakeFiles/hivesim_cloud.dir/pricing.cc.o"
  "CMakeFiles/hivesim_cloud.dir/pricing.cc.o.d"
  "CMakeFiles/hivesim_cloud.dir/provisioner.cc.o"
  "CMakeFiles/hivesim_cloud.dir/provisioner.cc.o.d"
  "CMakeFiles/hivesim_cloud.dir/spot_market.cc.o"
  "CMakeFiles/hivesim_cloud.dir/spot_market.cc.o.d"
  "CMakeFiles/hivesim_cloud.dir/vm.cc.o"
  "CMakeFiles/hivesim_cloud.dir/vm.cc.o.d"
  "libhivesim_cloud.a"
  "libhivesim_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
