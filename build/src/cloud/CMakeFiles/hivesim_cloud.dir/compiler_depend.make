# Empty compiler generated dependencies file for hivesim_cloud.
# This may be replaced when dependencies are built.
