# Empty dependencies file for hivesim_compute.
# This may be replaced when dependencies are built.
