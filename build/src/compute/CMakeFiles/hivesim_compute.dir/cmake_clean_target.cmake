file(REMOVE_RECURSE
  "libhivesim_compute.a"
)
