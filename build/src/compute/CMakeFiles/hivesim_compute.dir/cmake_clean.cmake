file(REMOVE_RECURSE
  "CMakeFiles/hivesim_compute.dir/gpu.cc.o"
  "CMakeFiles/hivesim_compute.dir/gpu.cc.o.d"
  "CMakeFiles/hivesim_compute.dir/host.cc.o"
  "CMakeFiles/hivesim_compute.dir/host.cc.o.d"
  "libhivesim_compute.a"
  "libhivesim_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
