# Empty compiler generated dependencies file for hivesim_hivemind.
# This may be replaced when dependencies are built.
