file(REMOVE_RECURSE
  "libhivesim_hivemind.a"
)
