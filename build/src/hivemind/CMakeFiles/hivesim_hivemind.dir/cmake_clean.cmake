file(REMOVE_RECURSE
  "CMakeFiles/hivesim_hivemind.dir/matchmaking.cc.o"
  "CMakeFiles/hivesim_hivemind.dir/matchmaking.cc.o.d"
  "CMakeFiles/hivesim_hivemind.dir/monitor.cc.o"
  "CMakeFiles/hivesim_hivemind.dir/monitor.cc.o.d"
  "CMakeFiles/hivesim_hivemind.dir/progress_board.cc.o"
  "CMakeFiles/hivesim_hivemind.dir/progress_board.cc.o.d"
  "CMakeFiles/hivesim_hivemind.dir/trainer.cc.o"
  "CMakeFiles/hivesim_hivemind.dir/trainer.cc.o.d"
  "libhivesim_hivemind.a"
  "libhivesim_hivemind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hivesim_hivemind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
