
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hivemind/matchmaking.cc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/matchmaking.cc.o" "gcc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/matchmaking.cc.o.d"
  "/root/repo/src/hivemind/monitor.cc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/monitor.cc.o" "gcc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/monitor.cc.o.d"
  "/root/repo/src/hivemind/progress_board.cc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/progress_board.cc.o" "gcc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/progress_board.cc.o.d"
  "/root/repo/src/hivemind/trainer.cc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/trainer.cc.o" "gcc" "src/hivemind/CMakeFiles/hivesim_hivemind.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hivesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hivesim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hivesim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/hivesim_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hivesim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/hivesim_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/hivesim_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hivesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
