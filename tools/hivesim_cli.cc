// hivesim — command-line front end to the simulation library.
//
// Subcommands:
//   list                       Models, VM types, and named experiments.
//   run                        Run a named experiment series.
//     --series A|B|C|D|lambda  (default A)
//     --model CONV|RXLM|...    (default CONV)
//     --tbs N                  (default 32768)
//     --hours H                (default 2)
//     --csv PATH / --json PATH Optional exports.
//   fleet                      Run a custom fleet.
//     --spec "gc-us:4,gc-eu:4" VM groups site:count (gc-us, gc-eu,
//                              gc-asia, gc-aus, aws, azure, lambda).
//     --model / --tbs / --hours as above.
//   run/fleet also accept:
//     --trace-out PATH         Chrome trace_event JSON of the run
//                              (open in https://ui.perfetto.dev).
//     --metrics-out PATH       Counter/gauge/histogram snapshot as JSON.
//   advise                     Rank training options by $/1M samples.
//     --model M --min-sps S --sizes "2,4,8"
//   profile                    iperf/ping between two sites.
//     --from gc-us --to gc-eu --streams N
//
// Examples:
//   hivesim run --series C --model RXLM
//   hivesim fleet --spec "gc-us:2,aws:2" --model CONV --json /tmp/d2.json
//   hivesim advise --model CONV --min-sps 250
//   hivesim profile --from onprem --to gc-us --streams 80

#include <iostream>
#include <map>
#include <string>

#include "common/flags.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "common/units.h"
#include "core/advisor.h"
#include "core/catalog.h"
#include "core/experiment.h"
#include "core/granularity.h"
#include "core/report.h"
#include "net/profiler.h"
#include "net/profiles.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace {

using namespace hivesim;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

const std::map<std::string, net::SiteId>& SiteAliases() {
  static const auto& aliases = *new std::map<std::string, net::SiteId>{
      {"gc-us", net::kGcUs},     {"gc-eu", net::kGcEu},
      {"gc-asia", net::kGcAsia}, {"gc-aus", net::kGcAus},
      {"aws", net::kAwsUsWest},  {"azure", net::kAzureUsSouth},
      {"lambda", net::kLambdaUsWest}, {"onprem", net::kOnPremEu},
  };
  return aliases;
}

Result<core::VmGroup> GroupFor(const std::string& site_alias, int count) {
  auto it = SiteAliases().find(site_alias);
  if (it == SiteAliases().end()) {
    return Status::InvalidArgument(StrCat("unknown site '", site_alias,
                                          "'; see `hivesim list`"));
  }
  switch (it->second) {
    case net::kAwsUsWest:
      return core::AwsT4s(count);
    case net::kAzureUsSouth:
      return core::AzureT4s(count);
    case net::kLambdaUsWest:
      return core::LambdaA10s(count);
    case net::kOnPremEu:
      return Status::InvalidArgument(
          "on-prem machines are singletons; use the E/F series");
    default:
      return core::GcT4s(count, it->second);
  }
}

Result<core::ClusterSpec> ParseFleetSpec(const std::string& spec) {
  core::ClusterSpec cluster;
  for (const std::string& part : StrSplit(spec, ',')) {
    const auto fields = StrSplit(part, ':');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrCat("bad group '", part, "', want site:count"));
    }
    const int count = std::atoi(fields[1].c_str());
    if (count <= 0) {
      return Status::InvalidArgument(StrCat("bad count in '", part, "'"));
    }
    core::VmGroup group;
    HIVESIM_ASSIGN_OR_RETURN(group, GroupFor(fields[0], count));
    cluster.groups.push_back(group);
  }
  if (cluster.groups.empty()) {
    return Status::InvalidArgument("empty fleet spec");
  }
  return cluster;
}

Result<std::vector<core::NamedExperiment>> SeriesFor(
    const std::string& name) {
  if (name == "A") return core::ASeries();
  if (name == "B") return core::BSeries();
  if (name == "C") return core::CSeries();
  if (name == "D") return core::DSeries();
  if (name == "lambda") return core::LambdaSeries();
  return Status::InvalidArgument(
      StrCat("unknown series '", name, "' (A, B, C, D, lambda)"));
}

int CmdList() {
  std::cout << "Models:\n";
  TableWriter models_table({"Name", "Full name", "Domain", "Params"});
  for (int m = 0; m < models::kNumModels; ++m) {
    const auto& spec = models::GetModelSpec(static_cast<models::ModelId>(m));
    models_table.AddRow({std::string(spec.name), std::string(spec.full_name),
                         std::string(models::DomainName(spec.domain)),
                         StrFormat("%.1fM", spec.params / 1e6)});
  }
  models_table.Print(std::cout);

  std::cout << "\nSites (for --spec / --from / --to):\n  ";
  for (const auto& [alias, site] : SiteAliases()) std::cout << alias << " ";
  std::cout << "\n\nExperiment series: A (intra-zone), B (transatlantic), "
               "C (intercontinental), D (multi-cloud), lambda (A10s)\n";
  return 0;
}

void EnableTelemetryIfRequested(const FlagSet& flags) {
  if (!flags.GetString("trace-out", "").empty() ||
      !flags.GetString("metrics-out", "").empty()) {
    telemetry::Telemetry::Enable();
  }
}

/// Writes the dumps requested via --trace-out/--metrics-out; 0 on success.
int WriteTelemetryOutputs(const FlagSet& flags) {
  const std::string trace = flags.GetString("trace-out", "");
  if (!trace.empty() &&
      !telemetry::Telemetry::trace().WriteChromeJson(trace)) {
    return Fail(Status::IOError(StrCat("cannot write ", trace)));
  }
  const std::string metrics = flags.GetString("metrics-out", "");
  if (!metrics.empty() &&
      !telemetry::Telemetry::metrics().WriteJson(metrics)) {
    return Fail(Status::IOError(StrCat("cannot write ", metrics)));
  }
  return 0;
}

int CmdRun(const FlagSet& flags) {
  EnableTelemetryIfRequested(flags);
  auto series = SeriesFor(flags.GetString("series", "A"));
  if (!series.ok()) return Fail(series.status());
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  auto tbs = flags.GetInt("tbs", 32768);
  if (!tbs.ok()) return Fail(tbs.status());
  auto hours = flags.GetDouble("hours", 2.0);
  if (!hours.ok()) return Fail(hours.status());

  core::ReportBuilder report(
      StrCat("series ", flags.GetString("series", "A"), " / ",
             models::ModelName(*model)));
  for (const auto& experiment : *series) {
    core::ExperimentConfig config;
    config.model = *model;
    config.target_batch_size = *tbs;
    config.duration_sec = *hours * kHour;
    auto result = core::RunHivemindExperiment(experiment.cluster, config);
    if (!result.ok()) {
      std::cerr << experiment.name << ": " << result.status().ToString()
                << "\n";
      continue;
    }
    report.Add(experiment.name, std::move(*result));
  }
  report.PrintTable(std::cout);

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && !report.WriteCsv(csv)) {
    return Fail(Status::IOError(StrCat("cannot write ", csv)));
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << report.ToJson() << "\n";
    if (!f) return Fail(Status::IOError(StrCat("cannot write ", json_path)));
  }
  return WriteTelemetryOutputs(flags);
}

int CmdFleet(const FlagSet& flags) {
  EnableTelemetryIfRequested(flags);
  auto cluster = ParseFleetSpec(flags.GetString("spec", "gc-us:8"));
  if (!cluster.ok()) return Fail(cluster.status());
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  auto tbs = flags.GetInt("tbs", 32768);
  if (!tbs.ok()) return Fail(tbs.status());
  auto hours = flags.GetDouble("hours", 2.0);
  if (!hours.ok()) return Fail(hours.status());

  core::ExperimentConfig config;
  config.model = *model;
  config.target_batch_size = *tbs;
  config.duration_sec = *hours * kHour;
  auto result = core::RunHivemindExperiment(*cluster, config);
  if (!result.ok()) return Fail(result.status());

  core::ReportBuilder report(
      StrCat("fleet ", flags.GetString("spec", "gc-us:8")));
  const double granularity = result->train.granularity;
  report.Add(flags.GetString("spec", "gc-us:8"), std::move(*result));
  report.PrintTable(std::cout);
  std::cout << "Scaling outlook: "
            << core::SuitabilityAdvice(
                   core::ClassifyGranularity(granularity))
            << "\n";
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << report.ToJson() << "\n";
    if (!f) return Fail(Status::IOError(StrCat("cannot write ", json_path)));
  }
  return WriteTelemetryOutputs(flags);
}

int CmdAdvise(const FlagSet& flags) {
  core::AdvisorRequest request;
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  request.model = *model;
  auto min_sps = flags.GetDouble("min-sps", 0.0);
  if (!min_sps.ok()) return Fail(min_sps.status());
  request.min_throughput_sps = *min_sps;
  request.fleet_sizes.clear();
  for (const std::string& size :
       StrSplit(flags.GetString("sizes", "2,4,8"), ',')) {
    request.fleet_sizes.push_back(std::atoi(size.c_str()));
  }
  auto options = core::RankTrainingOptions(request);
  if (!options.ok()) return Fail(options.status());

  TableWriter table({"Setup", "SPS", "$/h", "$/1M", "Meets target"});
  for (const auto& option : *options) {
    if (option.throughput_sps <= 0) continue;
    table.AddRow({option.description,
                  StrFormat("%.1f", option.throughput_sps),
                  StrFormat("%.2f", option.cost_per_hour),
                  StrFormat("%.2f", option.cost_per_million),
                  option.meets_target ? "yes" : "no"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdProfile(const FlagSet& flags) {
  const auto& aliases = SiteAliases();
  auto from = aliases.find(flags.GetString("from", "gc-us"));
  auto to = aliases.find(flags.GetString("to", "gc-eu"));
  if (from == aliases.end() || to == aliases.end()) {
    return Fail(Status::InvalidArgument("unknown --from/--to site"));
  }
  auto streams = flags.GetInt("streams", 1);
  if (!streams.ok()) return Fail(streams.status());

  sim::Simulator sim;
  net::Topology topo = net::StandardWorld();
  net::Network network(&sim, &topo);
  net::Profiler profiler(&network);
  const net::NodeId src =
      topo.AddNode(from->second, from->second == net::kOnPremEu
                                     ? net::OnPremNetConfig()
                                     : net::CloudVmNetConfig());
  const net::NodeId dst = topo.AddNode(to->second, net::CloudVmNetConfig());
  auto bps = profiler.Iperf(src, dst, 10.0, *streams);
  if (!bps.ok()) return Fail(bps.status());
  auto ping = profiler.PingMs(src, dst);
  if (!ping.ok()) return Fail(ping.status());
  std::cout << from->first << " -> " << to->first << " (" << *streams
            << (*streams == 1 ? " stream" : " streams")
            << "): " << FormatRate(*bps) << ", ping "
            << StrFormat("%.1f ms", *ping) << "\n";
  return 0;
}

int Usage() {
  std::cout << "usage: hivesim <list|run|fleet|advise|profile> [--flags]\n"
               "See the header of tools/hivesim_cli.cc for details.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional().front();
  if (command == "list") return CmdList();
  if (command == "run") return CmdRun(flags);
  if (command == "fleet") return CmdFleet(flags);
  if (command == "advise") return CmdAdvise(flags);
  if (command == "profile") return CmdProfile(flags);
  return Usage();
}
