// hivesim — command-line front end to the simulation library.
//
// Subcommands:
//   list                       Models, VM types, and named experiments.
//   run                        Run a named experiment series.
//     --series A|B|C|D|lambda  (default A)
//     --model CONV|RXLM|...    (default CONV)
//     --tbs N                  (default 32768)
//     --hours H                (default 2)
//     --csv PATH / --json PATH Optional exports.
//   fleet                      Run a custom fleet.
//     --spec "gc-us:4,gc-eu:4" VM groups site:count (gc-us, gc-eu,
//                              gc-asia, gc-aus, aws, azure, lambda).
//     --model / --tbs / --hours as above.
//   run/fleet also accept:
//     --scenario PATH          Arm a scenario pack (JSON/CSV fault
//                              script; docs/SCENARIOS.md) against the
//                              fleet and print the chaos fingerprint.
//     --trace-out PATH         Chrome trace_event JSON of the run
//                              (open in https://ui.perfetto.dev).
//     --metrics-out PATH       Counter/gauge/histogram snapshot as JSON.
//     --analysis-out PATH      In-process critical-path analysis of the
//                              run (schema hivesim-analysis/1) — byte-
//                              identical to `hivesim analyze` on the
//                              same run's --trace-out/--metrics-out.
//   analyze                    Post-hoc critical-path / bottleneck
//                              attribution of a recorded trace
//                              (docs/OBSERVABILITY.md).
//     --trace PATH             Chrome trace JSON from --trace-out (or a
//                              sweep cell's runs/ directory). Required.
//     --metrics PATH           Optional metrics snapshot; adds the
//                              trace-vs-counter reconciliation section.
//     --out PATH               Write analysis.json (deterministic:
//                              same trace => identical bytes).
//     --top K                  Headroom entries (default 5).
//     --what-if F              Headroom link-speed factor (default 2).
//   advise                     Rank training options by $/1M samples.
//     --model M --min-sps S --sizes "2,4,8"
//   profile                    iperf/ping between two sites.
//     --from gc-us --to gc-eu --streams N
//   lint                       Determinism & layering static analysis
//                              over src/, tools/, bench/ (rules D1-D4,
//                              L1, P1; docs/STATIC_ANALYSIS.md).
//     --compile-commands PATH  compile_commands.json (default
//                              build/compile_commands.json).
//     --root DIR               Repository root (default ".").
//   perfgate                   Compare bench --bench-json artifacts
//                              against the committed perf baselines
//                              (docs/PERFORMANCE.md).
//     --current-dir DIR        Freshly generated BENCH_<area>.json.
//     --baseline-dir DIR       Baselines (default bench/baselines).
//     --areas a,b              Areas to gate (default chaos,fig3,fleet,
//                              kernel_net,kernel_sim).
//     --threshold F            Allowed relative slowdown (default 0.25).
//     --update                 Rewrite baselines from --current-dir.
//     --allow-new-area         An area with no baseline file yet is
//                              reported as new (warn) instead of erroring.
//   sweep                      Run a whole figure grid concurrently.
//     --series A,B             Cluster axis from named series, and/or
//     --fleets "lambda:2;gc-us:4"   custom fleets (';'-separated specs).
//     --models CONV,RXLM       Model axis ("suitability" = Fig. 3/4 set).
//     --tbs 8192,16384,32768   Target-batch-size axis.
//     --seeds 1,2              Seed axis.
//     --chaos none,partition   Chaos axis (none, wan-degrade, partition,
//                              churn); see docs/SWEEPS.md.
//     --scenarios p1.json,p2   Scenario packs extending the chaos axis;
//                              each cell label is the pack's name.
//     --hours H --title T      Shared run length / report title.
//     --threads N              Worker threads (results are byte-identical
//                              for any N; see tests/sweep_test.cc).
//     --out DIR                Write report.json/report.csv/manifest.json/
//                              metrics_merged.json (+ per-run telemetry
//                              under DIR/runs with --telemetry).
//     --telemetry              Per-cell trace + metrics capture.
//   scenario                   Inspect scenario packs (docs/SCENARIOS.md).
//     --check PATH             Parse + validate; print a summary.
//     --canonicalize PATH      Parse and print the canonical JSON bytes.
//     --dump-builtin NAME      Print a builtin pack (wan-degrade,
//                              partition, churn, zone-diurnal) — what the
//                              committed scenarios/<name>.json holds.
//   fuzz                       Chaos fuzzer: seeded random scenario packs
//                              against random fleets, each world run
//                              twice, the oracle set checked, failures
//                              shrunk to minimal reproducer packs
//                              (docs/SCENARIOS.md).
//     --seed S --runs N        Campaign identity (same seed+runs => same
//                              verdicts, same digest, byte-identical
//                              reproducer files).
//     --budget-sec B           Wall-clock safety stop (0 = none; hitting
//                              it marks the campaign truncated).
//     --max-events K           Events per generated pack (default 6).
//     --tbs N --sim-minutes M  Fuzz-world trainer shape.
//     --repro-dir DIR          Write minimized reproducers here.
//     --no-shrink              Report raw failing packs unshrunk.
//     --replay PATH            Re-run one committed reproducer pack's
//                              oracles instead of fuzzing (exit 0 iff
//                              it passes — the regression contract for
//                              tests/scenarios/).
//     --replay-dir DIR         Replay every *.json pack in DIR.
//
// Unknown or repeated flags are hard errors on every subcommand — a
// typo'd sweep axis would otherwise silently run the wrong grid.
//
// Examples:
//   hivesim run --series C --model RXLM
//   hivesim fleet --spec "gc-us:2,aws:2" --model CONV --json /tmp/d2.json
//   hivesim advise --model CONV --min-sps 250
//   hivesim profile --from onprem --to gc-us --streams 80
//   hivesim sweep --fleets "lambda:2" --models suitability
//     --tbs 8192,16384,32768 --hours 1 --threads 8 --out /tmp/fig3

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "common/table_writer.h"
#include "common/units.h"
#include "core/advisor.h"
#include "core/catalog.h"
#include "core/experiment.h"
#include "core/granularity.h"
#include "core/report.h"
#include "core/sweep.h"
#include "core/sweep_runner.h"
#include "faults/chaos.h"
#include "fuzz/fuzz.h"
#include "lint/lint.h"
#include "net/profiler.h"
#include "perfgate/perfgate.h"
#include "net/profiles.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"
#include "telemetry/analysis.h"
#include "telemetry/telemetry.h"

namespace {

using namespace hivesim;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

// Fleet parsing lives in core/catalog.h now — the CLI, the sweep engine,
// and the fuzzer's reproducer packs all share one "site:count" grammar.
const std::map<std::string, net::SiteId>& SiteAliases() {
  return core::FleetSiteAliases();
}

Result<std::vector<core::NamedExperiment>> SeriesFor(
    const std::string& name) {
  if (name == "A") return core::ASeries();
  if (name == "B") return core::BSeries();
  if (name == "C") return core::CSeries();
  if (name == "D") return core::DSeries();
  if (name == "lambda") return core::LambdaSeries();
  return Status::InvalidArgument(
      StrCat("unknown series '", name, "' (A, B, C, D, lambda)"));
}

int CmdList(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({}); !s.ok()) return Fail(s);
  std::cout << "Models:\n";
  TableWriter models_table({"Name", "Full name", "Domain", "Params"});
  for (int m = 0; m < models::kNumModels; ++m) {
    const auto& spec = models::GetModelSpec(static_cast<models::ModelId>(m));
    models_table.AddRow({std::string(spec.name), std::string(spec.full_name),
                         std::string(models::DomainName(spec.domain)),
                         StrFormat("%.1fM", spec.params / 1e6)});
  }
  models_table.Print(std::cout);

  std::cout << "\nSites (for --spec / --from / --to):\n  ";
  for (const auto& [alias, site] : SiteAliases()) std::cout << alias << " ";
  std::cout << "\n\nExperiment series: A (intra-zone), B (transatlantic), "
               "C (intercontinental), D (multi-cloud), lambda (A10s)\n";
  return 0;
}

void EnableTelemetryIfRequested(const FlagSet& flags) {
  if (!flags.GetString("trace-out", "").empty() ||
      !flags.GetString("metrics-out", "").empty() ||
      !flags.GetString("analysis-out", "").empty()) {
    telemetry::Telemetry::Enable();
  }
}

/// Writes the dumps requested via --trace-out/--metrics-out/
/// --analysis-out; 0 on success.
int WriteTelemetryOutputs(const FlagSet& flags) {
  const std::string trace = flags.GetString("trace-out", "");
  if (!trace.empty() &&
      !telemetry::Telemetry::trace().WriteChromeJson(trace)) {
    return Fail(Status::IOError(StrCat("cannot write ", trace)));
  }
  const std::string metrics = flags.GetString("metrics-out", "");
  if (!metrics.empty() &&
      !telemetry::Telemetry::metrics().WriteJson(metrics)) {
    return Fail(Status::IOError(StrCat("cannot write ", metrics)));
  }
  const std::string analysis = flags.GetString("analysis-out", "");
  if (!analysis.empty()) {
    // In-process mode: same round model, same canonicalized arithmetic
    // as `hivesim analyze` reading the written trace — byte-identical.
    auto report = telemetry::RoundAnalyzer().Analyze();
    if (!report.ok()) return Fail(report.status());
    std::ofstream f(analysis, std::ios::binary);
    f << report->ToJson() << "\n";
    if (!f) return Fail(Status::IOError(StrCat("cannot write ", analysis)));
  }
  return 0;
}

/// Runs one experiment with a scenario pack compiled against the fleet
/// and armed; prints the chaos fingerprint (the replay handle, the same
/// number sweep manifests record). Scenario runs get the sweep engine's
/// chaos hardening so a scripted partition degrades instead of stalling
/// the run.
Result<core::ExperimentResult> RunWithScenario(
    const core::ClusterSpec& cluster, core::ExperimentConfig config,
    const scenario::ScenarioPack& pack, const std::string& label) {
  config.averaging_round_timeout_sec = 120;
  config.averaging_retry_base_sec = 1.0;
  config.averaging_max_retries = 2;
  std::unique_ptr<core::ExperimentWorld> world;
  HIVESIM_ASSIGN_OR_RETURN(world, core::BuildExperimentWorld(cluster, config));
  faults::ChaosSchedule schedule;
  HIVESIM_ASSIGN_OR_RETURN(
      schedule,
      scenario::Compile(pack, core::FleetViewOf(world->cluster, world->topology),
                        config.duration_sec));
  faults::ChaosInjector injector(&world->sim, &world->topology,
                                 world->network.get(), config.seed);
  injector.AttachTrainer(world->trainer.get());
  HIVESIM_RETURN_IF_ERROR(injector.Arm(schedule));
  core::ExperimentResult result;
  HIVESIM_ASSIGN_OR_RETURN(result, core::CompleteExperiment(*world, config));
  std::cout << label << ": scenario " << pack.name << " fingerprint "
            << StrFormat("%016llx", static_cast<unsigned long long>(
                                        injector.TraceFingerprint()))
            << "\n";
  return result;
}

int CmdRun(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"series", "model", "tbs", "hours", "csv",
                                   "json", "scenario", "trace-out",
                                   "metrics-out", "analysis-out"});
      !s.ok()) {
    return Fail(s);
  }
  EnableTelemetryIfRequested(flags);
  auto series = SeriesFor(flags.GetString("series", "A"));
  if (!series.ok()) return Fail(series.status());
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  auto tbs = flags.GetInt("tbs", 32768);
  if (!tbs.ok()) return Fail(tbs.status());
  auto hours = flags.GetDouble("hours", 2.0);
  if (!hours.ok()) return Fail(hours.status());
  scenario::ScenarioPack pack;
  const std::string scenario_path = flags.GetString("scenario", "");
  if (!scenario_path.empty()) {
    auto loaded = scenario::LoadScenarioFile(scenario_path);
    if (!loaded.ok()) return Fail(loaded.status());
    pack = std::move(*loaded);
  }

  core::ReportBuilder report(
      StrCat("series ", flags.GetString("series", "A"), " / ",
             models::ModelName(*model)));
  for (const auto& experiment : *series) {
    core::ExperimentConfig config;
    config.model = *model;
    config.target_batch_size = *tbs;
    config.duration_sec = *hours * kHour;
    auto result =
        scenario_path.empty()
            ? core::RunHivemindExperiment(experiment.cluster, config)
            : RunWithScenario(experiment.cluster, config, pack,
                              experiment.name);
    if (!result.ok()) {
      std::cerr << experiment.name << ": " << result.status().ToString()
                << "\n";
      continue;
    }
    report.Add(experiment.name, std::move(*result));
  }
  report.PrintTable(std::cout);

  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty() && !report.WriteCsv(csv)) {
    return Fail(Status::IOError(StrCat("cannot write ", csv)));
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << report.ToJson() << "\n";
    if (!f) return Fail(Status::IOError(StrCat("cannot write ", json_path)));
  }
  return WriteTelemetryOutputs(flags);
}

int CmdFleet(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"spec", "model", "tbs", "hours", "json",
                                   "scenario", "trace-out", "metrics-out",
                                   "analysis-out"});
      !s.ok()) {
    return Fail(s);
  }
  EnableTelemetryIfRequested(flags);
  auto cluster = core::ParseFleetSpec(flags.GetString("spec", "gc-us:8"));
  if (!cluster.ok()) return Fail(cluster.status());
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  auto tbs = flags.GetInt("tbs", 32768);
  if (!tbs.ok()) return Fail(tbs.status());
  auto hours = flags.GetDouble("hours", 2.0);
  if (!hours.ok()) return Fail(hours.status());

  core::ExperimentConfig config;
  config.model = *model;
  config.target_batch_size = *tbs;
  config.duration_sec = *hours * kHour;
  const std::string scenario_path = flags.GetString("scenario", "");
  Result<core::ExperimentResult> result = [&]() -> Result<core::ExperimentResult> {
    if (scenario_path.empty()) {
      return core::RunHivemindExperiment(*cluster, config);
    }
    scenario::ScenarioPack pack;
    HIVESIM_ASSIGN_OR_RETURN(pack, scenario::LoadScenarioFile(scenario_path));
    return RunWithScenario(*cluster, config, pack,
                           flags.GetString("spec", "gc-us:8"));
  }();
  if (!result.ok()) return Fail(result.status());

  core::ReportBuilder report(
      StrCat("fleet ", flags.GetString("spec", "gc-us:8")));
  const double granularity = result->train.granularity;
  report.Add(flags.GetString("spec", "gc-us:8"), std::move(*result));
  report.PrintTable(std::cout);
  std::cout << "Scaling outlook: "
            << core::SuitabilityAdvice(
                   core::ClassifyGranularity(granularity))
            << "\n";
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream f(json_path);
    f << report.ToJson() << "\n";
    if (!f) return Fail(Status::IOError(StrCat("cannot write ", json_path)));
  }
  return WriteTelemetryOutputs(flags);
}

int CmdAdvise(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"model", "min-sps", "sizes"}); !s.ok()) {
    return Fail(s);
  }
  core::AdvisorRequest request;
  auto model = models::ParseModelId(flags.GetString("model", "CONV"));
  if (!model.ok()) return Fail(model.status());
  request.model = *model;
  auto min_sps = flags.GetDouble("min-sps", 0.0);
  if (!min_sps.ok()) return Fail(min_sps.status());
  request.min_throughput_sps = *min_sps;
  request.fleet_sizes.clear();
  for (const std::string& size :
       StrSplit(flags.GetString("sizes", "2,4,8"), ',')) {
    request.fleet_sizes.push_back(std::atoi(size.c_str()));
  }
  auto options = core::RankTrainingOptions(request);
  if (!options.ok()) return Fail(options.status());

  TableWriter table({"Setup", "SPS", "$/h", "$/1M", "Meets target"});
  for (const auto& option : *options) {
    if (option.throughput_sps <= 0) continue;
    table.AddRow({option.description,
                  StrFormat("%.1f", option.throughput_sps),
                  StrFormat("%.2f", option.cost_per_hour),
                  StrFormat("%.2f", option.cost_per_million),
                  option.meets_target ? "yes" : "no"});
  }
  table.Print(std::cout);
  return 0;
}

int CmdProfile(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"from", "to", "streams"}); !s.ok()) {
    return Fail(s);
  }
  const auto& aliases = SiteAliases();
  auto from = aliases.find(flags.GetString("from", "gc-us"));
  auto to = aliases.find(flags.GetString("to", "gc-eu"));
  if (from == aliases.end() || to == aliases.end()) {
    return Fail(Status::InvalidArgument("unknown --from/--to site"));
  }
  auto streams = flags.GetInt("streams", 1);
  if (!streams.ok()) return Fail(streams.status());

  sim::Simulator sim;
  net::Topology topo = net::StandardWorld();
  net::Network network(&sim, &topo);
  net::Profiler profiler(&network);
  const net::NodeId src =
      topo.AddNode(from->second, from->second == net::kOnPremEu
                                     ? net::OnPremNetConfig()
                                     : net::CloudVmNetConfig());
  const net::NodeId dst = topo.AddNode(to->second, net::CloudVmNetConfig());
  auto bps = profiler.Iperf(src, dst, 10.0, *streams);
  if (!bps.ok()) return Fail(bps.status());
  auto ping = profiler.PingMs(src, dst);
  if (!ping.ok()) return Fail(ping.status());
  std::cout << from->first << " -> " << to->first << " (" << *streams
            << (*streams == 1 ? " stream" : " streams")
            << "): " << FormatRate(*bps) << ", ping "
            << StrFormat("%.1f ms", *ping) << "\n";
  return 0;
}

/// Splits a comma list and parses each field as a non-negative integer.
Result<std::vector<int64_t>> ParseIntList(const std::string& text,
                                          const char* what) {
  std::vector<int64_t> values;
  for (const std::string& field : StrSplit(text, ',')) {
    char* end = nullptr;
    const long long v = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0' || v < 0) {
      return Status::InvalidArgument(
          StrCat("bad ", what, " '", field, "' (want a non-negative int)"));
    }
    values.push_back(v);
  }
  return values;
}

int CmdSweep(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"series", "fleets", "models", "tbs",
                                   "seeds", "chaos", "scenarios", "hours",
                                   "title", "threads", "out", "telemetry"});
      !s.ok()) {
    return Fail(s);
  }

  core::SweepSpec spec;
  spec.title = flags.GetString("title", "sweep");

  // Cluster axis: named series and/or custom fleet specs.
  const std::string series_list = flags.GetString("series", "");
  if (!series_list.empty()) {
    for (const std::string& name : StrSplit(series_list, ',')) {
      auto series = SeriesFor(name);
      if (!series.ok()) return Fail(series.status());
      spec.clusters.insert(spec.clusters.end(), series->begin(),
                           series->end());
    }
  }
  const std::string fleets = flags.GetString("fleets", "");
  if (!fleets.empty()) {
    for (const std::string& fleet_spec : StrSplit(fleets, ';')) {
      auto cluster = core::ParseFleetSpec(fleet_spec);
      if (!cluster.ok()) return Fail(cluster.status());
      spec.clusters.push_back(core::NamedExperiment{fleet_spec, *cluster});
    }
  }
  if (spec.clusters.empty()) {
    return Fail(Status::InvalidArgument(
        "sweep needs a cluster axis: --series and/or --fleets"));
  }

  const std::string model_list = flags.GetString("models", "CONV");
  spec.models.clear();
  if (model_list == "suitability") {
    spec.models = models::SuitabilityStudyModels();
  } else {
    for (const std::string& name : StrSplit(model_list, ',')) {
      auto model = models::ParseModelId(name);
      if (!model.ok()) return Fail(model.status());
      spec.models.push_back(*model);
    }
  }

  auto tbs_list = ParseIntList(flags.GetString("tbs", "32768"), "--tbs");
  if (!tbs_list.ok()) return Fail(tbs_list.status());
  spec.target_batch_sizes.assign(tbs_list->begin(), tbs_list->end());

  auto seed_list = ParseIntList(flags.GetString("seeds", "1"), "--seeds");
  if (!seed_list.ok()) return Fail(seed_list.status());
  spec.seeds.assign(seed_list->begin(), seed_list->end());

  spec.chaos.clear();
  for (const std::string& name :
       StrSplit(flags.GetString("chaos", "none"), ',')) {
    auto preset = core::ParseChaosPreset(name);
    if (!preset.ok()) return Fail(preset.status());
    spec.chaos.push_back(*preset);
  }

  // Scenario packs extend the chaos axis; each cell is labelled with the
  // pack's own name.
  const std::string scenario_paths = flags.GetString("scenarios", "");
  if (!scenario_paths.empty()) {
    for (const std::string& path : StrSplit(scenario_paths, ',')) {
      auto pack = scenario::LoadScenarioFile(path);
      if (!pack.ok()) return Fail(pack.status());
      spec.scenarios.push_back(
          core::ScenarioAxisEntry{pack->name, std::move(*pack)});
    }
  }

  auto hours = flags.GetDouble("hours", 2.0);
  if (!hours.ok()) return Fail(hours.status());
  spec.duration_sec = *hours * kHour;

  core::SweepOptions options;
  auto threads = flags.GetInt("threads", 1);
  if (!threads.ok()) return Fail(threads.status());
  options.threads = *threads;
  options.out_dir = flags.GetString("out", "");
  options.per_run_telemetry = flags.GetBool("telemetry", false);

  auto summary = core::RunSweep(spec, options);
  if (!summary.ok()) return Fail(summary.status());

  core::ReportBuilder report(spec.title);
  for (size_t i = 0; i < summary->cells.size(); ++i) {
    if (summary->outcomes[i].ok) {
      report.Add(summary->cells[i].name, summary->outcomes[i].result);
    }
  }
  report.PrintTable(std::cout);
  for (size_t i = 0; i < summary->cells.size(); ++i) {
    if (!summary->outcomes[i].ok) {
      std::cerr << summary->cells[i].name << ": "
                << summary->outcomes[i].error << "\n";
    }
  }
  std::cout << StrFormat(
      "%zu cells, %d failed, %.2fs wall on %d thread%s\n",
      summary->cells.size(), summary->failures, summary->wall_sec,
      options.threads < 1 ? 1 : options.threads,
      options.threads == 1 ? "" : "s");
  if (!options.out_dir.empty()) {
    std::cout << "wrote " << options.out_dir
              << "/{report.json,report.csv,manifest.json,"
                 "metrics_merged.json}"
              << (options.per_run_telemetry ? " + runs/*" : "") << "\n";
  }
  return summary->failures == 0 ? 0 : 1;
}

int CmdAnalyze(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"trace", "metrics", "out", "top",
                                   "what-if"});
      !s.ok()) {
    return Fail(s);
  }
  const std::string trace_path = flags.GetString("trace", "");
  if (trace_path.empty()) {
    return Fail(Status::InvalidArgument(
        "analyze needs --trace with a Chrome trace JSON (see --trace-out)"));
  }
  telemetry::AnalysisOptions options;
  auto top = flags.GetInt("top", options.top_k);
  if (!top.ok()) return Fail(top.status());
  if (*top < 0) {
    return Fail(Status::InvalidArgument("--top must be non-negative"));
  }
  options.top_k = *top;
  auto what_if = flags.GetDouble("what-if", options.what_if_factor);
  if (!what_if.ok()) return Fail(what_if.status());
  if (!(*what_if >= 1.0)) {
    return Fail(Status::InvalidArgument("--what-if must be >= 1"));
  }
  options.what_if_factor = *what_if;

  std::ifstream in(trace_path, std::ios::binary);
  if (!in) {
    return Fail(Status::IOError(StrCat("cannot read ", trace_path)));
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto report = telemetry::AnalyzeChromeJson(text.str(), options);
  if (!report.ok()) return Fail(report.status());

  const std::string metrics_path = flags.GetString("metrics", "");
  if (!metrics_path.empty()) {
    auto doc = ParseJsonFile(metrics_path);
    if (!doc.ok()) return Fail(doc.status());
    if (Status s = telemetry::AttachMetricsJson(&report.value(), *doc);
        !s.ok()) {
      return Fail(s);
    }
  }

  report->PrintTable(std::cout);
  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << report->ToJson() << "\n";
    if (!out) return Fail(Status::IOError(StrCat("cannot write ", out_path)));
  }
  return 0;
}

int CmdLint(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"compile-commands", "root", "json"});
      !s.ok()) {
    return Fail(s);
  }
  lint::LintOptions options;
  options.repo_root = flags.GetString("root", ".");
  options.compile_commands_path =
      flags.GetString("compile-commands", "build/compile_commands.json");
  auto report = lint::RunLint(options);
  if (!report.ok()) return Fail(report.status());
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << lint::JsonReport(*report) << "\n";
    if (!out) {
      return Fail(Status::IOError(StrCat("cannot write ", json_path)));
    }
  }
  std::cout << lint::FormatReport(*report);
  if (!report->diagnostics.empty()) {
    std::cout << "suppress a deliberate exception with "
                 "'// hivesim-lint: allow(<rule>) reason=<why>' on the "
                 "offending line or the line above it\n";
  }
  return lint::ExitCode(*report);
}

int CmdPerfGate(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"baseline-dir", "current-dir", "areas",
                                   "threshold", "update", "allow-new-area"});
      !s.ok()) {
    return Fail(s);
  }
  perfgate::GateOptions options;
  options.baseline_dir = flags.GetString("baseline-dir", "bench/baselines");
  options.current_dir = flags.GetString("current-dir", "");
  if (options.current_dir.empty()) {
    return Fail(Status::InvalidArgument(
        "perfgate needs --current-dir with the fresh BENCH_*.json"));
  }
  const std::string areas = flags.GetString("areas", "");
  if (!areas.empty()) options.areas = StrSplit(areas, ',');
  auto threshold = flags.GetDouble("threshold", options.default_threshold);
  if (!threshold.ok()) return Fail(threshold.status());
  if (!(*threshold > 0)) {
    return Fail(Status::InvalidArgument("--threshold must be positive"));
  }
  options.default_threshold = *threshold;
  options.update = flags.GetBool("update", false);
  options.allow_new_area = flags.GetBool("allow-new-area", false);

  auto report = perfgate::Run(options);
  if (!report.ok()) return Fail(report.status());
  if (options.update) {
    std::cout << "perf baselines updated in " << options.baseline_dir
              << " (" << report->rows.size() << " benches)\n";
    return 0;
  }
  std::cout << perfgate::FormatReport(*report);
  return report->failed ? 1 : 0;
}

int CmdScenario(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"check", "canonicalize", "dump-builtin"});
      !s.ok()) {
    return Fail(s);
  }
  const std::string check = flags.GetString("check", "");
  const std::string canonicalize = flags.GetString("canonicalize", "");
  const std::string builtin = flags.GetString("dump-builtin", "");
  const int modes = static_cast<int>(!check.empty()) +
                    static_cast<int>(!canonicalize.empty()) +
                    static_cast<int>(!builtin.empty());
  if (modes != 1) {
    return Fail(Status::InvalidArgument(
        "scenario wants exactly one of --check PATH, --canonicalize PATH, "
        "--dump-builtin NAME"));
  }
  if (!builtin.empty()) {
    auto pack = scenario::BuiltinScenario(builtin);
    if (!pack.ok()) return Fail(pack.status());
    std::cout << scenario::ScenarioToJson(*pack) << "\n";
    return 0;
  }
  auto pack = scenario::LoadScenarioFile(check.empty() ? canonicalize : check);
  if (!pack.ok()) return Fail(pack.status());
  if (!canonicalize.empty()) {
    std::cout << scenario::ScenarioToJson(*pack) << "\n";
    return 0;
  }
  std::cout << "ok: " << pack->name << " (" << pack->NumEvents()
            << (pack->NumEvents() == 1 ? " event" : " events")
            << (pack->repro.present
                    ? StrCat(", reproducer for fleet ", pack->repro.fleet,
                             ", oracle ", pack->repro.oracle)
                    : "")
            << ")\n";
  return 0;
}

/// Replays reproducer packs: exit 0 iff every pack's oracle set passes.
/// This is the regression contract for tests/scenarios/ — a committed
/// reproducer documents a *fixed* bug, so it must replay clean.
int ReplayPacks(const std::vector<std::string>& paths,
                const fuzz::FuzzOptions& options) {
  int failures = 0;
  for (const std::string& path : paths) {
    auto verdict = fuzz::ReplayScenarioFile(path, options);
    if (!verdict.ok()) return Fail(verdict.status());
    if (!verdict->ran) {
      ++failures;
      std::cout << path << ": rejected (" << verdict->detail << ")\n";
    } else if (!verdict->ok) {
      ++failures;
      std::cout << path << ": FAIL oracle " << verdict->oracle << ": "
                << verdict->detail << "\n";
    } else {
      std::cout << path << ": ok\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

int CmdFuzz(const FlagSet& flags) {
  if (Status s = flags.CheckKnown({"seed", "runs", "budget-sec", "max-events",
                                   "tbs", "sim-minutes", "repro-dir",
                                   "no-shrink", "inject-ordering-bug",
                                   "replay", "replay-dir"});
      !s.ok()) {
    return Fail(s);
  }
  fuzz::FuzzOptions options;
  auto seed = flags.GetInt("seed", 1);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  auto runs = flags.GetInt("runs", 20);
  if (!runs.ok()) return Fail(runs.status());
  options.runs = *runs;
  auto budget = flags.GetDouble("budget-sec", 0.0);
  if (!budget.ok()) return Fail(budget.status());
  options.budget_sec = *budget;
  auto max_events = flags.GetInt("max-events", 6);
  if (!max_events.ok()) return Fail(max_events.status());
  options.max_events = *max_events;
  auto tbs = flags.GetInt("tbs", 4096);
  if (!tbs.ok()) return Fail(tbs.status());
  options.target_batch_size = *tbs;
  auto minutes = flags.GetDouble("sim-minutes", 30.0);
  if (!minutes.ok()) return Fail(minutes.status());
  options.sim_duration_sec = *minutes * 60.0;
  options.repro_dir = flags.GetString("repro-dir", "");
  options.shrink = !flags.GetBool("no-shrink", false);
  options.inject_ordering_bug = flags.GetBool("inject-ordering-bug", false);

  const std::string replay = flags.GetString("replay", "");
  const std::string replay_dir = flags.GetString("replay-dir", "");
  if (!replay.empty() || !replay_dir.empty()) {
    std::vector<std::string> paths;
    if (!replay.empty()) paths.push_back(replay);
    if (!replay_dir.empty()) {
      namespace fs = std::filesystem;
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(replay_dir, ec)) {
        if (entry.path().extension() == ".json") {
          paths.push_back(entry.path().string());
        }
      }
      if (ec) {
        return Fail(Status::IOError(
            StrCat("cannot read ", replay_dir, ": ", ec.message())));
      }
      std::sort(paths.begin(), paths.end());
    }
    if (paths.empty()) {
      std::cout << "no reproducer packs to replay in " << replay_dir << "\n";
      return 0;
    }
    return ReplayPacks(paths, options);
  }

  auto result = fuzz::RunCampaign(options);
  if (!result.ok()) return Fail(result.status());
  std::cout << StrFormat(
      "fuzz seed %llu: %d cases (%d ran, %d rejected), %d failure%s%s\n",
      static_cast<unsigned long long>(options.seed), result->cases,
      result->ran, result->rejected, result->failures,
      result->failures == 1 ? "" : "s",
      result->truncated ? " [truncated by --budget-sec]" : "");
  for (size_t i = 0; i < result->failure_oracles.size(); ++i) {
    std::cout << "  failure " << i + 1 << ": oracle "
              << result->failure_oracles[i];
    if (i < result->repro_files.size()) {
      std::cout << " -> " << result->repro_files[i];
    }
    std::cout << "\n";
  }
  std::cout << StrFormat("campaign digest %016llx\n",
                         static_cast<unsigned long long>(result->digest));
  return result->failures == 0 ? 0 : 1;
}

int Usage() {
  std::cout << "usage: hivesim <list|run|fleet|advise|profile|sweep|"
               "scenario|fuzz|analyze|lint|perfgate> [--flags]\n"
               "See the header of tools/hivesim_cli.cc for details.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional().front();
  if (command == "list") return CmdList(flags);
  if (command == "run") return CmdRun(flags);
  if (command == "fleet") return CmdFleet(flags);
  if (command == "advise") return CmdAdvise(flags);
  if (command == "profile") return CmdProfile(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "scenario") return CmdScenario(flags);
  if (command == "fuzz") return CmdFuzz(flags);
  if (command == "analyze") return CmdAnalyze(flags);
  if (command == "lint") return CmdLint(flags);
  if (command == "perfgate") return CmdPerfGate(flags);
  return Usage();
}
