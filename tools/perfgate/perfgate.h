#ifndef HIVESIM_TOOLS_PERFGATE_PERFGATE_H_
#define HIVESIM_TOOLS_PERFGATE_PERFGATE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace hivesim::perfgate {

/// The perf-trajectory gate: compares freshly generated BENCH_<area>.json
/// artifacts (written by the bench binaries' `--bench-json=` mode)
/// against the committed baselines in bench/baselines/, and fails CI when
/// a benchmark slowed down beyond its allowed relative threshold or a
/// deterministic self-check value drifted.
///
/// File layout, identical in both directories:
///   BENCH_<area>.json = {"area":"<area>",
///                        "benches":{"BM_X/4096":{"ns_per_iter":N}},
///                        "checks":{"storm_fired":13333},
///                        "max_rss_bytes":123456789,
///                        "schema":"hivesim-bench/1"}
/// A baseline may additionally carry {"thresholds":{"BM_X/4096":0.60}}
/// to widen the gate for a known-noisy bench; `Run` with `update=true`
/// preserves that object when rewriting the baseline. `max_rss_bytes` is
/// the area's memory ceiling (process peak RSS after the bench run); it
/// is gated like a timing but against `rss_threshold` — a deliberately
/// generous limit, since an allocator or environment change can move RSS
/// without any algorithmic regression. A baseline may still pin it
/// tighter (or looser) with a "max_rss_bytes" entry in "thresholds".

struct GateOptions {
  std::string baseline_dir;  ///< Committed baselines (bench/baselines).
  std::string current_dir;   ///< Freshly generated artifacts.
  /// Areas to gate; each maps to one BENCH_<area>.json in both dirs.
  std::vector<std::string> areas = {"chaos", "fig3", "fleet", "kernel_net",
                                    "kernel_sim"};
  /// Allowed relative slowdown (0.25 = current may be up to 25% slower
  /// than baseline) unless the baseline overrides it per bench.
  double default_threshold = 0.25;
  /// Allowed relative growth of an area's peak RSS.
  double rss_threshold = 0.5;
  /// Rewrite the baselines from the current artifacts instead of
  /// comparing (the `--update-golden` analogue for perf numbers).
  bool update = false;
  /// With this set, an area whose baseline file does not exist yet is
  /// reported as all-new rows (warn) instead of a hard error — the escape
  /// hatch for landing a brand-new bench area in the same change that
  /// records its first baseline. A baseline file that exists but fails to
  /// parse is still a hard error, as is a missing *current* artifact
  /// (that is lost coverage, not a new area).
  bool allow_new_area = false;
};

enum class RowStatus {
  kOk,             ///< Within threshold.
  kImproved,       ///< Faster than baseline beyond the threshold.
  kRegressed,      ///< Slower than baseline beyond the threshold: FAIL.
  kNew,            ///< In current but not baseline: warn only.
  kMissing,        ///< In baseline but not current: FAIL (lost coverage).
  kCheckOk,        ///< Deterministic check matches exactly.
  kCheckMismatch,  ///< Deterministic check drifted: FAIL.
};

/// One compared benchmark timing or check value.
struct GateRow {
  std::string area;
  std::string name;  ///< Bench name ("BM_X/4096") or check key.
  double baseline = 0;
  double current = 0;
  double threshold = 0;  ///< Relative limit applied (0 for checks).
  RowStatus status = RowStatus::kOk;
};

struct GateReport {
  std::vector<GateRow> rows;  ///< Area-then-name sorted.
  bool failed = false;        ///< Any kRegressed/kMissing/kCheckMismatch.
  int regressions = 0;
  int improvements = 0;
  int check_mismatches = 0;
  int missing = 0;
  int new_benches = 0;
};

/// Compares (or, with `options.update`, rewrites) the baselines. Returns
/// an error Status when an artifact file is missing or malformed — that
/// is an infrastructure failure, distinct from a perf regression, which
/// comes back as `GateReport::failed`.
Result<GateReport> Run(const GateOptions& options);

/// Renders the before/after table plus a one-line verdict.
std::string FormatReport(const GateReport& report);

}  // namespace hivesim::perfgate

#endif  // HIVESIM_TOOLS_PERFGATE_PERFGATE_H_
