#include "perfgate/perfgate.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/json.h"
#include "common/json_parse.h"
#include "common/strings.h"
#include "common/table_writer.h"

namespace hivesim::perfgate {
namespace {

/// One BENCH_<area>.json, decoded into sorted maps.
struct AreaDoc {
  std::string area;
  std::map<std::string, double> benches;     ///< name -> ns_per_iter.
  std::map<std::string, double> checks;      ///< key -> exact value.
  std::map<std::string, double> thresholds;  ///< Optional, baseline only.
  double max_rss_bytes = 0;                  ///< 0 = not recorded.
};

/// The reserved row/threshold name for the per-area memory ceiling.
constexpr const char* kRssKey = "max_rss_bytes";

std::string AreaPath(const std::string& dir, const std::string& area) {
  return StrCat(dir, "/BENCH_", area, ".json");
}

Result<AreaDoc> LoadArea(const std::string& dir, const std::string& area) {
  const std::string path = AreaPath(dir, area);
  Result<JsonValue> parsed = ParseJsonFile(path);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument(path + ": top level is not an object");
  }

  AreaDoc doc;
  const JsonValue* area_field = root.Find("area");
  doc.area = area_field ? area_field->StringOr("") : "";
  if (doc.area != area) {
    return Status::InvalidArgument(
        StrCat(path, ": \"area\" is \"", doc.area, "\", expected \"", area,
               "\""));
  }

  const JsonValue* benches = root.Find("benches");
  if (benches == nullptr || !benches->is_object()) {
    return Status::InvalidArgument(path + ": missing \"benches\" object");
  }
  for (const auto& [name, entry] : benches->object) {
    const JsonValue* ns = entry.Find("ns_per_iter");
    if (ns == nullptr || !ns->is_number() || !(ns->number_value > 0)) {
      return Status::InvalidArgument(
          StrCat(path, ": bench \"", name,
                 "\" has no positive \"ns_per_iter\""));
    }
    doc.benches[name] = ns->number_value;
  }

  if (const JsonValue* checks = root.Find("checks")) {
    if (!checks->is_object()) {
      return Status::InvalidArgument(path + ": \"checks\" is not an object");
    }
    for (const auto& [key, value] : checks->object) {
      if (!value.is_number()) {
        return Status::InvalidArgument(
            StrCat(path, ": check \"", key, "\" is not a number"));
      }
      doc.checks[key] = value.number_value;
    }
  }

  if (const JsonValue* rss = root.Find(kRssKey)) {
    if (!rss->is_number() || rss->number_value < 0) {
      return Status::InvalidArgument(
          StrCat(path, ": \"", kRssKey, "\" is not a non-negative number"));
    }
    doc.max_rss_bytes = rss->number_value;
  }

  if (const JsonValue* thresholds = root.Find("thresholds")) {
    if (!thresholds->is_object()) {
      return Status::InvalidArgument(path +
                                     ": \"thresholds\" is not an object");
    }
    for (const auto& [name, value] : thresholds->object) {
      if (!value.is_number() || !(value.number_value > 0)) {
        return Status::InvalidArgument(
            StrCat(path, ": threshold for \"", name, "\" is not positive"));
      }
      doc.thresholds[name] = value.number_value;
    }
  }
  return doc;
}

Status WriteBaseline(const std::string& dir, const AreaDoc& doc) {
  JsonWriter json;
  json.BeginObject();
  json.Key("area").String(doc.area);
  json.Key("benches").BeginObject();
  for (const auto& [name, ns] : doc.benches) {
    json.Key(name).BeginObject().Key("ns_per_iter").Number(ns).EndObject();
  }
  json.EndObject();
  json.Key("checks").BeginObject();
  for (const auto& [key, value] : doc.checks) {
    json.Key(key).Number(value);
  }
  json.EndObject();
  if (doc.max_rss_bytes > 0) {
    json.Key(kRssKey).Number(doc.max_rss_bytes);
  }
  json.Key("schema").String("hivesim-bench/1");
  if (!doc.thresholds.empty()) {
    json.Key("thresholds").BeginObject();
    for (const auto& [name, value] : doc.thresholds) {
      json.Key(name).Number(value);
    }
    json.EndObject();
  }
  json.EndObject();

  const std::string path = AreaPath(dir, doc.area);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json.ToString() << "\n";
  out.flush();
  if (!out) return Status::IOError("cannot write " + path);
  return Status::OK();
}

void CompareArea(const AreaDoc& baseline, const AreaDoc& current,
                 double default_threshold, double rss_threshold,
                 GateReport& report) {
  // Benchmarks: relative-threshold comparison. Walk the union of both
  // sorted maps so every bench lands in exactly one row.
  auto b = baseline.benches.begin();
  auto c = current.benches.begin();
  while (b != baseline.benches.end() || c != current.benches.end()) {
    GateRow row;
    row.area = current.area;
    if (c == current.benches.end() ||
        (b != baseline.benches.end() && b->first < c->first)) {
      row.name = b->first;
      row.baseline = b->second;
      row.status = RowStatus::kMissing;
      ++report.missing;
      ++b;
    } else if (b == baseline.benches.end() || c->first < b->first) {
      row.name = c->first;
      row.current = c->second;
      row.status = RowStatus::kNew;
      ++report.new_benches;
      ++c;
    } else {
      row.name = b->first;
      row.baseline = b->second;
      row.current = c->second;
      const auto override_it = baseline.thresholds.find(row.name);
      row.threshold = override_it != baseline.thresholds.end()
                          ? override_it->second
                          : default_threshold;
      const double relative = row.current / row.baseline - 1.0;
      if (relative > row.threshold) {
        row.status = RowStatus::kRegressed;
        ++report.regressions;
      } else if (relative < -row.threshold) {
        row.status = RowStatus::kImproved;
        ++report.improvements;
      } else {
        row.status = RowStatus::kOk;
      }
      ++b;
      ++c;
    }
    report.rows.push_back(row);
  }

  // Memory ceiling: relative comparison like a timing, but against the
  // (generous) RSS threshold. A baseline without a recorded ceiling makes
  // the current value informational (new); a baseline *with* one that the
  // current run stopped reporting is lost coverage, like a missing bench.
  if (baseline.max_rss_bytes > 0 || current.max_rss_bytes > 0) {
    GateRow row;
    row.area = current.area;
    row.name = kRssKey;
    row.baseline = baseline.max_rss_bytes;
    row.current = current.max_rss_bytes;
    if (baseline.max_rss_bytes <= 0) {
      row.status = RowStatus::kNew;
      ++report.new_benches;
    } else if (current.max_rss_bytes <= 0) {
      row.status = RowStatus::kMissing;
      ++report.missing;
    } else {
      const auto override_it = baseline.thresholds.find(kRssKey);
      row.threshold = override_it != baseline.thresholds.end()
                          ? override_it->second
                          : rss_threshold;
      const double relative = row.current / row.baseline - 1.0;
      if (relative > row.threshold) {
        row.status = RowStatus::kRegressed;
        ++report.regressions;
      } else if (relative < -row.threshold) {
        row.status = RowStatus::kImproved;
        ++report.improvements;
      } else {
        row.status = RowStatus::kOk;
      }
    }
    report.rows.push_back(row);
  }

  // Checks: exact equality over the union of keys. A key present on one
  // side only is also a mismatch — checks are the determinism contract,
  // so losing one silently would hollow out the gate.
  std::map<std::string, std::pair<const double*, const double*>> merged;
  for (const auto& [key, value] : baseline.checks) {
    merged[key].first = &value;
  }
  for (const auto& [key, value] : current.checks) {
    merged[key].second = &value;
  }
  for (const auto& [key, sides] : merged) {
    GateRow row;
    row.area = current.area;
    row.name = key;
    row.baseline = sides.first ? *sides.first : std::nan("");
    row.current = sides.second ? *sides.second : std::nan("");
    const bool match = sides.first && sides.second &&
                       *sides.first == *sides.second;
    row.status = match ? RowStatus::kCheckOk : RowStatus::kCheckMismatch;
    if (!match) ++report.check_mismatches;
    report.rows.push_back(row);
  }
}

std::string StatusLabel(RowStatus status) {
  switch (status) {
    case RowStatus::kOk: return "ok";
    case RowStatus::kImproved: return "IMPROVED";
    case RowStatus::kRegressed: return "REGRESSED";
    case RowStatus::kNew: return "new (no baseline)";
    case RowStatus::kMissing: return "MISSING";
    case RowStatus::kCheckOk: return "check ok";
    case RowStatus::kCheckMismatch: return "CHECK MISMATCH";
  }
  return "?";
}

bool IsCheckRow(const GateRow& row) {
  return row.status == RowStatus::kCheckOk ||
         row.status == RowStatus::kCheckMismatch;
}

std::string FormatValue(const GateRow& row, double value) {
  if (std::isnan(value)) return "-";
  // Timings as ns with thousands precision; checks verbatim.
  return IsCheckRow(row) ? StrFormat("%.17g", value)
                         : StrFormat("%.0f", value);
}

}  // namespace

Result<GateReport> Run(const GateOptions& options) {
  GateReport report;
  for (const std::string& area : options.areas) {
    Result<AreaDoc> current = LoadArea(options.current_dir, area);
    if (!current.ok()) return current.status();

    if (options.update) {
      AreaDoc updated = *current;
      // Keep per-bench threshold overrides across updates; they are
      // curated by hand, not produced by the bench binaries.
      Result<AreaDoc> previous = LoadArea(options.baseline_dir, area);
      if (previous.ok()) updated.thresholds = previous->thresholds;
      HIVESIM_RETURN_IF_ERROR(WriteBaseline(options.baseline_dir, updated));
      for (const auto& [name, ns] : updated.benches) {
        GateRow row;
        row.area = area;
        row.name = name;
        row.current = ns;
        row.baseline = ns;
        row.status = RowStatus::kOk;
        report.rows.push_back(row);
      }
      continue;
    }

    Result<AreaDoc> baseline = LoadArea(options.baseline_dir, area);
    if (!baseline.ok()) {
      // kIOError means the baseline file does not exist (a parse failure
      // comes back as kInvalidArgument and stays fatal either way). With
      // --allow-new-area that is a brand-new bench area: surface every
      // current value as a "new" row so the report shows what will be
      // recorded, and keep gating the remaining areas.
      if (options.allow_new_area &&
          baseline.status().code() == StatusCode::kIOError) {
        for (const auto& [name, ns] : current->benches) {
          GateRow row;
          row.area = area;
          row.name = name;
          row.current = ns;
          row.status = RowStatus::kNew;
          ++report.new_benches;
          report.rows.push_back(row);
        }
        if (current->max_rss_bytes > 0) {
          GateRow row;
          row.area = area;
          row.name = kRssKey;
          row.current = current->max_rss_bytes;
          row.status = RowStatus::kNew;
          ++report.new_benches;
          report.rows.push_back(row);
        }
        continue;
      }
      return baseline.status();
    }
    CompareArea(*baseline, *current, options.default_threshold,
                options.rss_threshold, report);
  }
  report.failed = report.regressions > 0 || report.missing > 0 ||
                  report.check_mismatches > 0;
  return report;
}

std::string FormatReport(const GateReport& report) {
  std::ostringstream out;
  TableWriter table(
      {"Area", "Bench / check", "Baseline", "Current", "Delta", "Limit",
       "Status"});
  for (const GateRow& row : report.rows) {
    std::string delta = "-";
    std::string limit = "-";
    if (!IsCheckRow(row) && row.baseline > 0 && row.current > 0) {
      delta = StrFormat("%+.1f%%", (row.current / row.baseline - 1) * 100);
      limit = StrFormat("+%.0f%%", row.threshold * 100);
    }
    table.AddRow({row.area, row.name, FormatValue(row, row.baseline),
                  FormatValue(row, row.current), delta, limit,
                  StatusLabel(row.status)});
  }
  table.Print(out);
  out << StrFormat(
      "perf-gate: %d regressed, %d improved, %d check mismatches, "
      "%d missing, %d new -> %s\n",
      report.regressions, report.improvements, report.check_mismatches,
      report.missing, report.new_benches,
      report.failed ? "FAIL" : "PASS");
  return out.str();
}

}  // namespace hivesim::perfgate
