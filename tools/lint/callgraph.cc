#include "lint/callgraph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>

#include "common/strings.h"
#include "lint/lint.h"

namespace hivesim::lint {

namespace {

/// Words that look like `ident(` but are never function definitions or
/// calls worth tracking.
bool IsKeyword(const std::string& s) {
  static const std::set<std::string>& kw = *new std::set<std::string>{
      "if",       "for",     "while",   "switch",   "return",
      "catch",    "sizeof",  "new",     "delete",   "do",
      "else",     "case",    "default", "defined",  "throw",
      "alignof",  "alignas", "decltype", "noexcept", "static_assert",
      "assert",   "typeid",  "co_await", "co_return", "co_yield",
  };
  return kw.count(s) > 0;
}

int AngleDelta(const Token& tok) {
  if (tok.kind != TokKind::kPunct) return 0;
  if (tok.text == "<") return 1;
  if (tok.text == ">") return -1;
  if (tok.text == ">>") return -2;
  return 0;
}

bool IsPunct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool IsIdent(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

/// Index just past a balanced `(`..`)` group starting at `open`
/// (tokens.size() when unbalanced).
size_t SkipParens(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "(")) ++depth;
    if (IsPunct(toks[j], ")")) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return toks.size();
}

/// Index just past a balanced `{`..`}` group starting at `open`.
size_t SkipBraces(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    if (IsPunct(toks[j], "{")) ++depth;
    if (IsPunct(toks[j], "}")) {
      --depth;
      if (depth == 0) return j + 1;
    }
  }
  return toks.size();
}

/// Index just past a balanced template argument list starting at the
/// `<` token (fused `>>` closes two levels).
size_t SkipAngles(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t j = open; j < toks.size(); ++j) {
    depth += AngleDelta(toks[j]);
    if (depth <= 0) return j + 1;
  }
  return toks.size();
}

/// Scans forward from the token after a definition head's closing `)`
/// looking for the body `{`. Accepts trailing qualifiers (const,
/// noexcept(...), override, ref-qualifiers, HIVESIM_* annotation
/// macros), trailing return types, and constructor initializer lists.
/// Returns the body's token index, or npos for declarations,
/// `= default/delete`, and anything unrecognized (macro soup in
/// preprocessor bodies bails here, by design).
size_t FindBodyBrace(const std::vector<Token>& toks, size_t after_paren) {
  constexpr size_t npos = static_cast<size_t>(-1);
  size_t k = after_paren;
  while (k < toks.size()) {
    const Token& u = toks[k];
    if (u.kind == TokKind::kIdentifier) {
      if (u.text == "const" || u.text == "noexcept" || u.text == "override" ||
          u.text == "final" || u.text == "mutable" || u.text == "try" ||
          u.text.rfind("HIVESIM_", 0) == 0) {
        ++k;
        continue;
      }
      return npos;
    }
    if (u.kind != TokKind::kPunct) return npos;
    if (u.text == "(") {
      k = SkipParens(toks, k);  // noexcept(...) / annotation args.
      continue;
    }
    if (u.text == "&") {
      ++k;  // Ref-qualifier (&& arrives as two '&' tokens).
      continue;
    }
    if (u.text == "->") {
      // Trailing return type: consume until the body or a ';'.
      ++k;
      while (k < toks.size() && !IsPunct(toks[k], "{") &&
             !IsPunct(toks[k], ";")) {
        ++k;
      }
      continue;
    }
    if (u.text == ":") {
      // Constructor initializer list: `member(expr)` / `member{expr}`
      // groups, then the body. A '{' directly after an identifier (or
      // closing template bracket) is a member brace-init; the body '{'
      // follows a ')' or '}' group end.
      ++k;
      int paren_depth = 0;
      while (k < toks.size()) {
        const Token& v = toks[k];
        if (IsPunct(v, "(")) ++paren_depth;
        if (IsPunct(v, ")")) --paren_depth;
        // A ';' here means the ':' was a ternary or label, not an
        // initializer list (`int x = c ? F(1) : G(2);` at file scope).
        if (IsPunct(v, ";") && paren_depth == 0) return npos;
        if (IsPunct(v, "{") && paren_depth == 0) {
          const Token& prev = toks[k - 1];
          const bool brace_init =
              prev.kind == TokKind::kIdentifier ||
              (prev.kind == TokKind::kPunct &&
               (prev.text == ">" || prev.text == ">>"));
          if (!brace_init) break;
          k = SkipBraces(toks, k);
          continue;
        }
        ++k;
      }
      continue;  // Re-examine toks[k]: either the body '{' or EOF.
    }
    if (u.text == "{") return k;
    return npos;  // ';', '=', ',', operators: a declaration, not a body.
  }
  return npos;
}

}  // namespace

const FunctionSpan* EnclosingFunction(const FileStructure& structure,
                                      size_t token_index) {
  const FunctionSpan* best = nullptr;
  for (const FunctionSpan& fn : structure.functions) {
    if (fn.body_begin <= token_index && token_index < fn.body_end) {
      best = &fn;  // Spans appear in order; the last match is innermost.
    }
  }
  return best;
}

FileStructure AnalyzeStructure(const LexedFile& lex,
                               const std::set<std::string>& emitter_symbols) {
  constexpr size_t npos = static_cast<size_t>(-1);
  FileStructure out;
  const std::vector<Token>& toks = lex.tokens;

  struct Scope {
    std::string name;  ///< "" for anonymous namespaces.
    int depth;         ///< Brace depth after the scope's own '{'.
  };
  std::vector<Scope> scopes;
  int depth = 0;        ///< Brace depth over visited tokens.
  int paren_depth = 0;  ///< Paren depth (skipped spans are balanced).
  int open_fn = -1;     ///< Index into out.functions, -1 at scope level.
  int open_fn_depth = 0;

  auto scope_name = [&scopes]() {
    std::string joined;
    for (const Scope& scope : scopes) {
      if (scope.name.empty()) continue;
      if (!joined.empty()) joined += "::";
      joined += scope.name;
    }
    return joined;
  };

  // Collects one mutex/atomic declaration starting at the type token.
  // Returns the index to resume from, or npos when not a declaration.
  auto collect_sync_decl = [&](size_t i, SyncDecl::Kind kind) -> size_t {
    size_t j = i + 1;
    if (kind == SyncDecl::Kind::kAtomic) {
      if (j >= toks.size() || !IsPunct(toks[j], "<")) return npos;
      j = SkipAngles(toks, j);
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdentifier) return npos;
    SyncDecl decl;
    decl.kind = kind;
    decl.name = toks[j].text;
    decl.scope = scope_name();
    decl.line = toks[j].line;
    ++j;
    if (j < toks.size() && IsPunct(toks[j], "(")) return npos;  // Not a decl.
    // Prefix annotations (HIVESIM_ATOMIC_LOCK_FREE std::atomic<...> x):
    // look back a few tokens, bounded by the previous statement.
    for (size_t b = i; b > 0 && i - b < 8; --b) {
      const Token& p = toks[b - 1];
      if (p.kind == TokKind::kPunct &&
          (p.text == ";" || p.text == "{" || p.text == "}")) {
        break;
      }
      if (IsIdent(p, "HIVESIM_ATOMIC_LOCK_FREE") ||
          IsIdent(p, "HIVESIM_GUARDED_BY")) {
        decl.annotated = true;
      }
    }
    // Postfix annotations, up to the terminating ';'. Brace/paren
    // initializers are skipped wholesale.
    while (j < toks.size() && !IsPunct(toks[j], ";")) {
      const Token& u = toks[j];
      if (IsPunct(u, "{")) {
        j = SkipBraces(toks, j);
        continue;
      }
      if (u.kind == TokKind::kIdentifier) {
        if (u.text == "HIVESIM_LOCK_ORDER_ROOT" ||
            (kind == SyncDecl::Kind::kAtomic &&
             (u.text == "HIVESIM_GUARDED_BY" ||
              u.text == "HIVESIM_ATOMIC_LOCK_FREE"))) {
          decl.annotated = true;
        }
        if (u.text == "HIVESIM_ACQUIRED_AFTER" ||
            u.text == "HIVESIM_ACQUIRED_BEFORE") {
          decl.annotated = true;
          const bool after = u.text == "HIVESIM_ACQUIRED_AFTER";
          // Parse the argument list into `::`-joined names.
          size_t a = j + 1;
          if (a < toks.size() && IsPunct(toks[a], "(")) {
            std::string arg;
            for (++a; a < toks.size() && !IsPunct(toks[a], ")"); ++a) {
              if (toks[a].kind == TokKind::kIdentifier) arg += toks[a].text;
              if (IsPunct(toks[a], "::")) arg += "::";
              if (IsPunct(toks[a], ",")) {
                if (!arg.empty()) {
                  (after ? decl.acquired_after : decl.acquired_before)
                      .push_back(arg);
                }
                arg.clear();
              }
            }
            if (!arg.empty()) {
              (after ? decl.acquired_after : decl.acquired_before)
                  .push_back(arg);
            }
            j = a;
          }
        }
      }
      ++j;
    }
    out.sync_decls.push_back(std::move(decl));
    return j;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren_depth;
      if (t.text == ")") --paren_depth;
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        if (open_fn >= 0 && depth < open_fn_depth) {
          out.functions[open_fn].body_end = i;
          open_fn = -1;
        }
        while (!scopes.empty() && depth < scopes.back().depth) {
          scopes.pop_back();
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdentifier) continue;

    // ---- Status/Result-returning function names (rule S1) -----------
    if (t.text == "Status" || t.text == "Result") {
      size_t j = i + 1;
      bool shape_ok = true;
      if (t.text == "Result") {
        if (j < toks.size() && IsPunct(toks[j], "<")) {
          j = SkipAngles(toks, j);
        } else {
          shape_ok = false;
        }
      }
      if (shape_ok) {
        // `Status Name(` / `Status::Factory(` / `Result<T> Cls::Fn(`.
        std::string last;
        while (j < toks.size()) {
          if (toks[j].kind == TokKind::kIdentifier) {
            last = toks[j].text;
            ++j;
            if (j < toks.size() && IsPunct(toks[j], "::")) {
              ++j;
              continue;
            }
            break;
          }
          if (IsPunct(toks[j], "::")) {
            ++j;
            continue;
          }
          break;
        }
        if (!last.empty() && !IsKeyword(last) && j < toks.size() &&
            IsPunct(toks[j], "(")) {
          out.status_fns.insert(last);
        }
      }
    }

    // ---- Mutex / atomic declarations (rule C1) -----------------------
    if (paren_depth == 0) {
      const bool std_qualified = i >= 2 && IsPunct(toks[i - 1], "::") &&
                                 IsIdent(toks[i - 2], "std");
      SyncDecl::Kind kind = SyncDecl::Kind::kMutex;
      bool is_sync = false;
      if (std_qualified && (t.text == "mutex" || t.text == "shared_mutex" ||
                            t.text == "recursive_mutex")) {
        is_sync = true;
      } else if (t.text == "Mutex") {
        is_sync = true;
      } else if (std_qualified && t.text == "atomic") {
        is_sync = true;
        kind = SyncDecl::Kind::kAtomic;
      }
      if (is_sync) {
        const size_t resume = collect_sync_decl(i, kind);
        if (resume != npos) {
          // Leave `i` alone: the decl's tokens carry no braces/parens
          // we have not already accounted for, except initializers —
          // those were skipped by collect_sync_decl, so fast-forward.
          i = resume - 1;
          continue;
        }
      }
    }

    if (open_fn >= 0) {
      // ---- Inside a function body: calls + emitter mentions ----------
      FunctionSpan& fn = out.functions[open_fn];
      if (fn.emitter_symbol.empty() && emitter_symbols.count(t.text) > 0) {
        fn.emitter_symbol = t.text;
      }
      if (!IsKeyword(t.text) && i + 1 < toks.size() &&
          IsPunct(toks[i + 1], "(")) {
        if (std::find(fn.calls.begin(), fn.calls.end(), t.text) ==
            fn.calls.end()) {
          fn.calls.push_back(t.text);
        }
      }
      continue;
    }

    // ---- Namespace scopes -------------------------------------------
    if (t.text == "namespace") {
      std::string name;
      size_t j = i + 1;
      while (j < toks.size()) {
        if (toks[j].kind == TokKind::kIdentifier) {
          if (!name.empty()) name += "::";
          name += toks[j].text;
          ++j;
          continue;
        }
        if (IsPunct(toks[j], "::")) {
          ++j;
          continue;
        }
        break;
      }
      if (j < toks.size() && IsPunct(toks[j], "{")) {
        scopes.push_back({name, depth + 1});
        ++depth;
        i = j;
      }
      continue;
    }

    // ---- Class/struct scopes (not `enum class`, and not a
    // `template <class T>` parameter, recognizable by the '<' or ','
    // immediately before) --------------------------------------------
    if ((t.text == "class" || t.text == "struct") &&
        (i == 0 || !(IsIdent(toks[i - 1], "enum") ||
                     IsPunct(toks[i - 1], "<") ||
                     IsPunct(toks[i - 1], ",")))) {
      std::string name;
      int angles = 0;
      int parens = 0;
      bool in_base_clause = false;
      size_t j = i + 1;
      for (; j < toks.size(); ++j) {
        const Token& u = toks[j];
        angles += AngleDelta(u);
        if (IsPunct(u, "(")) ++parens;
        if (IsPunct(u, ")")) --parens;
        if (angles > 0 || parens > 0) continue;
        if (u.kind == TokKind::kIdentifier && !in_base_clause &&
            u.text != "final") {
          name = u.text;  // Last plain identifier before ':' or '{'.
        }
        if (IsPunct(u, ":")) in_base_clause = true;
        if (IsPunct(u, ";")) break;  // Forward declaration.
        if (IsPunct(u, "=")) break;  // Alias.
        if (IsPunct(u, "{")) {
          scopes.push_back({name, depth + 1});
          ++depth;
          i = j;
          break;
        }
      }
      continue;
    }

    // ---- Function definition heads ----------------------------------
    if (!IsKeyword(t.text) && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      const size_t after_paren = SkipParens(toks, i + 1);
      const size_t body = FindBodyBrace(toks, after_paren);
      if (body != npos) {
        FunctionSpan fn;
        fn.name = t.text;
        fn.line = t.line;
        std::string qual = t.text;
        size_t b = i;
        if (b > 0 && IsPunct(toks[b - 1], "~")) {
          fn.name = "~" + fn.name;
          qual = "~" + qual;
          --b;
        }
        while (b >= 2 && IsPunct(toks[b - 1], "::") &&
               toks[b - 2].kind == TokKind::kIdentifier) {
          qual = toks[b - 2].text + "::" + qual;
          b -= 2;
        }
        if (qual == fn.name) {
          const std::string enclosing = scope_name();
          if (!enclosing.empty()) qual = enclosing + "::" + qual;
        }
        fn.qualified = qual;
        fn.body_begin = body;
        fn.body_end = toks.size();  // Fixed when the brace closes.
        out.functions.push_back(std::move(fn));
        open_fn = static_cast<int>(out.functions.size()) - 1;
        open_fn_depth = depth + 1;
        ++depth;
        i = body;  // The signature's parens were balanced; skip them.
        continue;
      }
    }
  }
  // Unterminated body (truncated file): close at EOF — body_end already
  // points past the last token.
  return out;
}

GraphLinkResult LinkCallGraph(
    std::vector<std::pair<std::string, FileStructure*>> files) {
  GraphLinkResult out;
  // Deterministic node order: files as given (the driver passes them
  // sorted by path), functions in definition order.
  struct Node {
    FunctionSpan* fn;
  };
  std::vector<Node> nodes;
  for (auto& [path, structure] : files) {
    out.status_fns.insert(structure->status_fns.begin(),
                          structure->status_fns.end());
    for (FunctionSpan& fn : structure->functions) {
      nodes.push_back({&fn});
    }
  }

  // Reverse edges by callee simple name: name -> callers.
  std::map<std::string, std::vector<size_t>> callers_of;
  for (size_t n = 0; n < nodes.size(); ++n) {
    for (const std::string& callee : nodes[n].fn->calls) {
      callers_of[callee].push_back(n);
    }
  }

  // BFS from the direct sinks; first marking wins, which makes every
  // witness path a shortest one (in hops) and keeps output stable.
  std::deque<size_t> frontier;
  for (size_t n = 0; n < nodes.size(); ++n) {
    FunctionSpan& fn = *nodes[n].fn;
    if (!fn.emitter_symbol.empty()) {
      fn.reaches_emission = true;
      fn.emission_path = StrCat(fn.name, " -> ", fn.emitter_symbol);
      frontier.push_back(n);
    }
  }
  while (!frontier.empty()) {
    const size_t n = frontier.front();
    frontier.pop_front();
    const auto it = callers_of.find(nodes[n].fn->name);
    if (it == callers_of.end()) continue;
    for (const size_t caller : it->second) {
      FunctionSpan& fn = *nodes[caller].fn;
      if (fn.reaches_emission) continue;
      fn.reaches_emission = true;
      fn.emission_path =
          StrCat(fn.name, " -> ", nodes[n].fn->emission_path);
      frontier.push_back(caller);
    }
  }

  // ---- Declared lock-acquisition DAG --------------------------------
  // Nodes are "Scope::member" mutex ids; HIVESIM_ACQUIRED_AFTER(x)
  // declares the edge x -> this ("x is taken first"), ACQUIRED_BEFORE
  // the reverse. A cycle means no consistent acquisition order exists:
  // the declared locking protocol can deadlock.
  const auto qualify = [](const std::string& arg, const std::string& scope) {
    if (arg.find("::") != std::string::npos || scope.empty()) return arg;
    return StrCat(scope, "::", arg);
  };
  std::map<std::string, std::set<std::string>> lock_edges;
  for (auto& [path, structure] : files) {
    for (const SyncDecl& decl : structure->sync_decls) {
      if (decl.kind != SyncDecl::Kind::kMutex) continue;
      const std::string id = qualify(decl.name, decl.scope);
      lock_edges[id];  // Ensure the node exists even without edges.
      for (const std::string& other : decl.acquired_after) {
        lock_edges[qualify(other, decl.scope)].insert(id);
      }
      for (const std::string& other : decl.acquired_before) {
        lock_edges[id].insert(qualify(other, decl.scope));
      }
    }
  }
  // Iterative DFS cycle detection (0 unvisited / 1 on stack / 2 done),
  // mirroring the module-DAG check in layering.cc.
  std::map<std::string, int> state;
  std::vector<std::string> path_stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        state[node] = 1;
        path_stack.push_back(node);
        const auto it = lock_edges.find(node);
        if (it != lock_edges.end()) {
          for (const std::string& next : it->second) {
            if (state[next] == 1) {
              // Found a cycle: slice the stack from `next` onward.
              std::string cycle;
              bool in_cycle = false;
              for (const std::string& hop : path_stack) {
                if (hop == next) in_cycle = true;
                if (in_cycle) cycle += StrCat(hop, " -> ");
              }
              cycle += next;
              if (reported.insert(cycle).second) {
                out.lock_order.push_back(
                    {"lock-order DAG", 0, "C1",
                     StrCat("declared lock acquisition order has a cycle: ",
                            cycle,
                            "; no consistent order exists, so the protocol "
                            "can deadlock — fix the HIVESIM_ACQUIRED_AFTER/"
                            "_BEFORE declarations")});
              }
              continue;
            }
            if (state[next] == 0) visit(next);
          }
        }
        path_stack.pop_back();
        state[node] = 2;
      };
  for (const auto& [node, unused] : lock_edges) {
    if (state[node] == 0) visit(node);
  }
  return out;
}

}  // namespace hivesim::lint

