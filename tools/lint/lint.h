#ifndef HIVESIM_TOOLS_LINT_LINT_H_
#define HIVESIM_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "lint/lexer.h"

namespace hivesim::lint {

/// One finding. `file` is repo-relative (or the path given for extra
/// files), `rule` is the short rule id ("D1".."D4", "L1", "P1") and
/// `message` is the full human text. Diagnostics compare by
/// (file, line, rule, message) so reports are deterministically ordered.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
  bool operator==(const Diagnostic& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// Tuning knobs; the defaults encode hivesim's invariants. Tests swap
/// in fixture trees and synthetic DAGs through the same structure.
struct LintConfig {
  /// Rule -> repo-relative path suffixes exempt from that rule. The
  /// only baked-in exemption is the seeded RNG itself: D1 bans entropy
  /// *outside* common/rng.h by definition.
  std::map<std::string, std::vector<std::string>> allowlist = {
      {"D1", {"common/rng.h"}},
  };

  /// Headers whose inclusion (transitively) marks a file as able to
  /// reach JSON/CSV/trace emission — the D3 call-graph approximation.
  std::vector<std::string> emitter_headers = {
      "common/json.h",
      "common/table_writer.h",
      "fuzz/fuzz.h",
      "scenario/scenario.h",
      "telemetry/analysis.h",
      "telemetry/round_model.h",
      "telemetry/telemetry.h",
  };

  /// Identifiers that mark a file as actually *touching* an emission
  /// API. D3 fires only in files that both include an emitter header
  /// and mention one of these, keeping the approximation honest.
  std::set<std::string> emitter_symbols = {
      "JsonWriter",   "TableWriter",     "TraceRecorder", "MetricsRegistry",
      "CounterHandle", "ToJson",         "ToCsv",         "ToChromeJson",
      "WriteJson",    "WriteCsv",        "WriteChromeJson", "Counter",
      "Gauge",        "Histogram",       "AppendCsv",     "AnalysisReport",
      "RoundAnalyzer", "AnalyzeDataset", "AnalyzeRecorder",
      "AnalyzeChromeJson", "BuildRoundModel", "PrintTable",
  };

  /// The declared module DAG: module -> direct dependencies. Both the
  /// CMake link edges and the include edges must stay inside the
  /// transitive closure of this map, and the map itself must be acyclic.
  /// Layer order (see docs/STATIC_ANALYSIS.md):
  ///   common -> telemetry -> sim/compute -> net/models ->
  ///   cloud/data/dht/collective/baselines -> hivemind -> faults ->
  ///   scenario -> core -> fuzz
  std::map<std::string, std::set<std::string>> module_dag = {
      {"common", {}},
      {"telemetry", {"common"}},
      {"sim", {"common", "telemetry"}},
      {"compute", {"common"}},
      {"net", {"common", "sim", "telemetry"}},
      {"models", {"common", "compute"}},
      {"cloud", {"common", "compute", "net", "sim", "telemetry"}},
      {"data", {"common", "models"}},
      {"dht", {"common", "net", "sim", "telemetry"}},
      {"collective", {"common", "net", "models", "telemetry"}},
      {"baselines", {"common", "models", "sim"}},
      {"hivemind",
       {"common", "net", "models", "collective", "data", "dht", "telemetry"}},
      {"faults",
       {"common", "sim", "net", "cloud", "dht", "hivemind", "telemetry"}},
      {"scenario", {"common", "net", "faults"}},
      {"core",
       {"common", "net", "cloud", "models", "hivemind", "baselines", "faults",
        "scenario", "telemetry"}},
      {"fuzz",
       {"common", "sim", "net", "models", "hivemind", "faults", "scenario",
        "core", "telemetry"}},
  };

  /// CMake library prefix mapping module dirs to targets.
  std::string lib_prefix = "hivesim_";
};

struct LintOptions {
  /// Repository root (absolute or relative to the CWD).
  std::string repo_root = ".";
  /// compile_commands.json produced by CMake; empty to skip TU
  /// discovery (tests lint `extra_files` directly instead).
  std::string compile_commands_path;
  /// Extra files to lint verbatim (paths relative to repo_root or
  /// absolute). Used by tests to lint fixtures.
  std::vector<std::string> extra_files;
  /// Run the L1 layering check over <repo_root>/src.
  bool check_layering = true;
  LintConfig config;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  ///< Sorted, deduplicated.
  int files_scanned = 0;
};

/// Process exit code for a report: 0 clean, 1 diagnostics present.
inline int ExitCode(const LintReport& report) {
  return report.diagnostics.empty() ? 0 : 1;
}

/// Runs the full analysis. Returns a Status error only for
/// environmental failures (unreadable compile_commands.json, missing
/// root); rule findings land in the report.
Result<LintReport> RunLint(const LintOptions& options);

/// Renders `file:line: error: [RULE] message` lines plus a trailing
/// summary, exactly as `hivesim lint` prints them.
std::string FormatReport(const LintReport& report);

// ---- Internals shared with tests -------------------------------------

/// Per-file facts computed by the driver before rules run.
struct FileFacts {
  std::string path;  ///< As reported in diagnostics.
  LexedFile lex;
  bool reaches_emission = false;
  /// Identifiers declared as unordered containers anywhere in this
  /// file's include closure (member decls live in headers).
  std::set<std::string> unordered_names;
};

/// Runs the token rules (D1, D2, D3, D4) over one file. Suppression
/// and P1 pragma hygiene are applied by the caller via ApplyPragmas.
std::vector<Diagnostic> CheckTokens(const FileFacts& facts,
                                    const LintConfig& config);

/// Collects identifiers declared as std::unordered_map/set in a file.
std::set<std::string> CollectUnorderedDecls(const LexedFile& lex);

/// Filters `raw` through the file's pragmas: a pragma on line L with a
/// matching rule suppresses diagnostics on L or L+1. Malformed and
/// unused pragmas are appended as P1 diagnostics.
std::vector<Diagnostic> ApplyPragmas(const std::string& path,
                                     const LexedFile& lex,
                                     std::vector<Diagnostic> raw);

}  // namespace hivesim::lint

#endif  // HIVESIM_TOOLS_LINT_LINT_H_
