#ifndef HIVESIM_TOOLS_LINT_LINT_H_
#define HIVESIM_TOOLS_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "lint/callgraph.h"
#include "lint/lexer.h"

namespace hivesim::lint {

/// One finding. `file` is repo-relative (or the path given for extra
/// files), `rule` is the short rule id ("D1".."D5", "C1", "S1", "L1",
/// "P1") and `message` is the full human text. Diagnostics compare by
/// (file, line, rule, message) so reports are deterministically ordered.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (rule != other.rule) return rule < other.rule;
    return message < other.message;
  }
  bool operator==(const Diagnostic& other) const {
    return file == other.file && line == other.line && rule == other.rule &&
           message == other.message;
  }
};

/// Tuning knobs; the defaults encode hivesim's invariants. Tests swap
/// in fixture trees and synthetic DAGs through the same structure.
struct LintConfig {
  /// Rule -> repo-relative path suffixes exempt from that rule. The
  /// baked-in exemptions are definitional: D1 bans entropy *outside*
  /// common/rng.h, and C1 requires the annotations that
  /// common/thread_annotations.h itself defines (its annotated Mutex
  /// wrapper holds the one std::mutex allowed to go bare).
  std::map<std::string, std::vector<std::string>> allowlist = {
      {"D1", {"common/rng.h"}},
      {"C1", {"common/thread_annotations.h"}},
  };

  /// Identifiers whose mention makes a function a direct emission
  /// sink. Reachability is then transitive over the cross-TU call
  /// graph: a function reaches emission iff it is a sink or calls one
  /// that does (see AnalyzeStructure/LinkCallGraph).
  std::set<std::string> emitter_symbols = {
      "JsonWriter",   "TableWriter",     "TraceRecorder", "MetricsRegistry",
      "CounterHandle", "ToJson",         "ToCsv",         "ToChromeJson",
      "WriteJson",    "WriteCsv",        "WriteChromeJson", "Counter",
      "Gauge",        "Histogram",       "AppendCsv",     "AnalysisReport",
      "RoundAnalyzer", "AnalyzeDataset", "AnalyzeRecorder",
      "AnalyzeChromeJson", "BuildRoundModel", "PrintTable",
  };

  /// The declared module DAG: module -> direct dependencies. Both the
  /// CMake link edges and the include edges must stay inside the
  /// transitive closure of this map, and the map itself must be acyclic.
  /// Layer order (see docs/STATIC_ANALYSIS.md):
  ///   common -> telemetry -> sim/compute -> net/models ->
  ///   cloud/data/dht/collective/baselines -> hivemind -> faults ->
  ///   scenario -> core -> fuzz
  std::map<std::string, std::set<std::string>> module_dag = {
      {"common", {}},
      {"telemetry", {"common"}},
      {"sim", {"common", "telemetry"}},
      {"compute", {"common"}},
      {"net", {"common", "sim", "telemetry"}},
      {"models", {"common", "compute"}},
      {"cloud", {"common", "compute", "net", "sim", "telemetry"}},
      {"data", {"common", "models"}},
      {"dht", {"common", "net", "sim", "telemetry"}},
      {"collective", {"common", "net", "models", "telemetry"}},
      {"baselines", {"common", "models", "sim"}},
      {"hivemind",
       {"common", "net", "models", "collective", "data", "dht", "telemetry"}},
      {"faults",
       {"common", "sim", "net", "cloud", "dht", "hivemind", "telemetry"}},
      {"scenario", {"common", "net", "faults"}},
      {"core",
       {"common", "net", "cloud", "models", "hivemind", "baselines", "faults",
        "scenario", "telemetry"}},
      {"fuzz",
       {"common", "sim", "net", "models", "hivemind", "faults", "scenario",
        "core", "telemetry"}},
  };

  /// CMake library prefix mapping module dirs to targets.
  std::string lib_prefix = "hivesim_";
};

struct LintOptions {
  /// Repository root (absolute or relative to the CWD).
  std::string repo_root = ".";
  /// compile_commands.json produced by CMake; empty to skip TU
  /// discovery (tests lint `extra_files` directly instead).
  std::string compile_commands_path;
  /// Extra files to lint verbatim (paths relative to repo_root or
  /// absolute). Used by tests to lint fixtures.
  std::vector<std::string> extra_files;
  /// Run the L1 layering check over <repo_root>/src.
  bool check_layering = true;
  LintConfig config;
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;  ///< Sorted, deduplicated.
  int files_scanned = 0;
};

/// Process exit code for a report: 0 clean, 1 diagnostics present.
inline int ExitCode(const LintReport& report) {
  return report.diagnostics.empty() ? 0 : 1;
}

/// Runs the full analysis. Returns a Status error only for
/// environmental failures (unreadable compile_commands.json, missing
/// root); rule findings land in the report.
Result<LintReport> RunLint(const LintOptions& options);

/// Renders `file:line: error: [RULE] message` lines plus a trailing
/// summary, exactly as `hivesim lint` prints them.
std::string FormatReport(const LintReport& report);

/// Machine-readable rendering of the same report: one JSON object with
/// schema id "hivesim-lint/1", the scan count, and the sorted
/// diagnostics (`hivesim lint --json=PATH` writes this; see
/// docs/STATIC_ANALYSIS.md for the schema).
std::string JsonReport(const LintReport& report);

// ---- Internals shared with tests -------------------------------------

/// Per-file facts computed by the driver before rules run.
struct FileFacts {
  std::string path;  ///< As reported in diagnostics.
  LexedFile lex;
  /// Functions, sync declarations, and Status-returning names, with
  /// emission reachability linked across all scanned files.
  FileStructure structure;
  /// Identifiers declared as unordered containers anywhere in this
  /// file's include closure (member decls live in headers).
  std::set<std::string> unordered_names;
  /// Identifiers declared as float/double in the include closure (D5's
  /// accumulator candidates).
  std::set<std::string> float_names;
  /// Cross-TU union of Status/Result-returning function names (S1).
  std::set<std::string> status_fns;
};

/// Output of linking the per-file structures into one program view.
struct GraphLinkResult {
  /// Union of every file's status_fns.
  std::set<std::string> status_fns;
  /// Lock-order DAG cycles (rule C1, reported against the pseudo-file
  /// "lock-order DAG"; deliberately not pragma-suppressible).
  std::vector<Diagnostic> lock_order;
};

/// Links the cross-TU call graph: marks every FunctionSpan that can
/// reach an emission sink (with its witness path), unions the
/// Status-returning names, and checks the declared lock-acquisition
/// DAG for cycles. Resolution is by simple name — an over-approximation
/// (any same-named function connects), which errs toward flagging.
GraphLinkResult LinkCallGraph(
    std::vector<std::pair<std::string, FileStructure*>> files);

/// Runs the token rules (D1-D5, C1, S1) over one file. Suppression
/// and P1 pragma hygiene are applied by the caller via ApplyPragmas.
std::vector<Diagnostic> CheckTokens(const FileFacts& facts,
                                    const LintConfig& config);

/// Collects identifiers declared as std::unordered_map/set in a file.
std::set<std::string> CollectUnorderedDecls(const LexedFile& lex);

/// Collects identifiers declared as float/double in a file.
std::set<std::string> CollectFloatDecls(const LexedFile& lex);

/// Filters `raw` through the file's pragmas: a pragma on line L with a
/// matching rule suppresses diagnostics on L or L+1. Malformed and
/// unused pragmas are appended as P1 diagnostics.
std::vector<Diagnostic> ApplyPragmas(const std::string& path,
                                     const LexedFile& lex,
                                     std::vector<Diagnostic> raw);

}  // namespace hivesim::lint

#endif  // HIVESIM_TOOLS_LINT_LINT_H_
