#include "lint/lexer.h"

#include <cctype>

namespace hivesim::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parses pragma text out of a comment body. The grammar is strict on
/// purpose: `hivesim-lint: allow(<rule>) reason=<non-empty text>`.
/// Anything that starts with the `hivesim-lint:` marker but does not
/// match is reported malformed rather than ignored.
void ParsePragmas(const std::string& comment, int line,
                  std::vector<Pragma>* out) {
  // The marker must open the comment (modulo whitespace and extra
  // doc-comment slashes). A mid-sentence mention of the pragma grammar
  // in prose is not a pragma.
  const std::string marker = "hivesim-lint:";
  size_t at = comment.find_first_not_of(" \t/");
  if (at == std::string::npos ||
      comment.compare(at, marker.size(), marker) != 0) {
    return;
  }

  Pragma pragma;
  pragma.line = line;
  std::string rest = Trim(comment.substr(at + marker.size()));
  const std::string allow = "allow(";
  if (rest.compare(0, allow.size(), allow) != 0) {
    pragma.malformed = true;
    pragma.error = "expected 'allow(<rule>)' after 'hivesim-lint:'";
    out->push_back(pragma);
    return;
  }
  size_t close = rest.find(')', allow.size());
  if (close == std::string::npos) {
    pragma.malformed = true;
    pragma.error = "unterminated 'allow('";
    out->push_back(pragma);
    return;
  }
  pragma.rule = Trim(rest.substr(allow.size(), close - allow.size()));
  if (pragma.rule.empty()) {
    pragma.malformed = true;
    pragma.error = "empty rule name in 'allow()'";
    out->push_back(pragma);
    return;
  }
  rest = Trim(rest.substr(close + 1));
  const std::string reason = "reason=";
  if (rest.compare(0, reason.size(), reason) != 0) {
    pragma.malformed = true;
    pragma.error = "missing 'reason=' (every suppression must say why)";
    out->push_back(pragma);
    return;
  }
  pragma.reason = Trim(rest.substr(reason.size()));
  if (pragma.reason.empty()) {
    pragma.malformed = true;
    pragma.error = "empty reason (every suppression must say why)";
  }
  out->push_back(pragma);
}

}  // namespace

LexedFile Lex(const std::string& content) {
  LexedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace so far on this line.

  auto peek = [&](size_t ahead) -> char {
    return i + ahead < n ? content[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Line comment: scan for pragmas, then drop.
    if (c == '/' && peek(1) == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      ParsePragmas(content.substr(i + 2, end - i - 2), line, &out.pragmas);
      i = end;
      continue;
    }
    // Block comment: may span lines; pragmas anchor to the start line.
    if (c == '/' && peek(1) == '*') {
      size_t end = content.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end;
      ParsePragmas(content.substr(i + 2, stop - i - 2), line, &out.pragmas);
      for (size_t j = i; j < stop; ++j) {
        if (content[j] == '\n') ++line;
      }
      i = end == std::string::npos ? n : end + 2;
      continue;
    }

    // Preprocessor directive at line start: record quoted includes.
    // The directive body is tokenized normally afterwards so banned
    // tokens inside macro definitions are still visible to rules.
    if (c == '#' && at_line_start) {
      size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      if (content.compare(j, 7, "include") == 0) {
        size_t q = content.find_first_of("\"<\n", j + 7);
        if (q != std::string::npos && content[q] == '"') {
          size_t endq = content.find('"', q + 1);
          if (endq != std::string::npos) {
            out.quoted_includes.push_back(
                content.substr(q + 1, endq - q - 1));
          }
        }
      }
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t d = i + 2;
      while (d < n && content[d] != '(') ++d;
      const std::string delim = content.substr(i + 2, d - i - 2);
      const std::string closer = ")" + delim + "\"";
      size_t end = content.find(closer, d + 1);
      const size_t stop = end == std::string::npos ? n : end;
      Token tok{TokKind::kString, content.substr(d + 1, stop - d - 1), line};
      for (size_t j = i; j < stop; ++j) {
        if (content[j] == '\n') ++line;
      }
      out.tokens.push_back(std::move(tok));
      i = end == std::string::npos ? n : end + closer.size();
      continue;
    }

    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string text;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) {
          text += content[j];
          text += content[j + 1];
          j += 2;
          continue;
        }
        if (content[j] == '\n') ++line;  // Unterminated; keep line count.
        text += content[j];
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kCharLit, text, line});
      i = j + 1;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdentifier, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.')) ++j;
      out.tokens.push_back({TokKind::kNumber, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Fused operators the rules distinguish from single chars.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>') ||
        (c == '<' && peek(1) == '<') || (c == '>' && peek(1) == '>')) {
      out.tokens.push_back(
          {TokKind::kPunct, content.substr(i, 2), line});
      i += 2;
      continue;
    }

    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace hivesim::lint
