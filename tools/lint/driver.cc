#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "lint/layering.h"
#include "lint/lint.h"

namespace hivesim::lint {

namespace {

namespace fs = std::filesystem;

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError(StrCat("cannot read ", path.string()));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Extracts the "file" string of every entry in compile_commands.json.
/// A full JSON parser is not needed: the format is a flat array of
/// objects whose values are strings; this scanner walks string
/// literals (honoring escapes) and picks the value following a "file"
/// key at object depth.
std::vector<std::string> ParseCompileCommandFiles(const std::string& json) {
  std::vector<std::string> files;
  std::string last_string;
  bool last_was_file_key = false;
  size_t i = 0;
  const size_t n = json.size();
  while (i < n) {
    const char c = json[i];
    if (c == '"') {
      std::string value;
      ++i;
      while (i < n && json[i] != '"') {
        if (json[i] == '\\' && i + 1 < n) {
          const char esc = json[i + 1];
          if (esc == 'n') {
            value += '\n';
          } else if (esc == 't') {
            value += '\t';
          } else if (esc == 'u' && i + 5 < n) {
            value += '?';  // Non-ASCII never appears in paths we keep.
            i += 4;
          } else {
            value += esc;
          }
          i += 2;
          continue;
        }
        value += json[i];
        ++i;
      }
      ++i;  // Closing quote.
      if (last_was_file_key) {
        files.push_back(value);
        last_was_file_key = false;
      } else {
        last_string = value;
      }
      continue;
    }
    if (c == ':') {
      last_was_file_key = last_string == "file";
      ++i;
      continue;
    }
    if (c == ',' || c == '{' || c == '}' || c == '[' || c == ']') {
      last_was_file_key = false;
      last_string.clear();
    }
    ++i;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

/// True if `path` (absolute, normalized) lives under root/<dir> for one
/// of the scanned directories.
bool UnderScannedDirs(const fs::path& root, const fs::path& path) {
  static const char* const kDirs[] = {"src", "tools", "bench"};
  const std::string rel = fs::relative(path, root).string();
  for (const char* dir : kDirs) {
    const std::string prefix = StrCat(dir, "/");
    if (rel.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

/// Resolves a quoted include against the project roots. Project
/// headers are included as "module/header.h" (rooted at src/) or
/// "lint/header.h" (rooted at tools/). Returns empty when the include
/// is not a project file (e.g. <random> or a system header).
std::string ResolveInclude(const fs::path& root, const std::string& inc) {
  for (const char* base : {"src", "tools"}) {
    const fs::path candidate = root / base / inc;
    std::error_code ec;
    if (fs::exists(candidate, ec)) {
      return StrCat(base, "/", inc);
    }
  }
  return "";
}

}  // namespace

Result<LintReport> RunLint(const LintOptions& options) {
  std::error_code ec;
  const fs::path root = fs::canonical(options.repo_root, ec);
  if (ec) {
    return Status::InvalidArgument(
        StrCat("repo root not found: ", options.repo_root));
  }

  // ---- Collect the file set -----------------------------------------
  // TUs come from compile_commands.json (the build is the source of
  // truth for what is compiled); headers are globbed so a header not
  // yet included anywhere still obeys the rules.
  std::set<std::string> rel_files;  // Sorted, deduplicated.
  if (!options.compile_commands_path.empty()) {
    auto json = ReadFile(fs::path(options.compile_commands_path));
    if (!json.ok()) {
      return Status::IOError(
          StrCat("cannot read compile commands: ",
                 options.compile_commands_path,
                 " (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON first)"));
    }
    for (const std::string& file : ParseCompileCommandFiles(*json)) {
      const fs::path path = fs::weakly_canonical(file, ec);
      if (ec || !fs::exists(path)) continue;
      if (UnderScannedDirs(root, path)) {
        rel_files.insert(fs::relative(path, root).string());
      }
    }
    if (rel_files.empty()) {
      return Status::InvalidArgument(
          StrCat("no project translation units in ",
                 options.compile_commands_path));
    }
    for (const char* dir : {"src", "tools", "bench"}) {
      const fs::path base = root / dir;
      if (!fs::exists(base, ec)) continue;
      for (const fs::directory_entry& entry :
           fs::recursive_directory_iterator(base, ec)) {
        if (entry.path().extension() == ".h") {
          rel_files.insert(fs::relative(entry.path(), root).string());
        }
      }
    }
  }
  for (const std::string& extra : options.extra_files) {
    const fs::path path =
        fs::path(extra).is_absolute() ? fs::path(extra) : root / extra;
    if (!fs::exists(path, ec)) {
      return Status::InvalidArgument(StrCat("no such file: ", extra));
    }
    rel_files.insert(fs::relative(path, root).string());
  }

  // ---- Lex every file, build the include graph ----------------------
  std::map<std::string, FileFacts> facts;
  std::map<std::string, std::vector<std::string>> includes;  // resolved
  for (const std::string& rel : rel_files) {
    auto content = ReadFile(root / rel);
    if (!content.ok()) return content.status();
    FileFacts f;
    f.path = rel;
    f.lex = Lex(*content);
    for (const std::string& inc : f.lex.quoted_includes) {
      const std::string resolved = ResolveInclude(root, inc);
      if (!resolved.empty()) includes[rel].push_back(resolved);
    }
    facts.emplace(rel, std::move(f));
  }

  // ---- Structural pass + cross-TU call graph ------------------------
  // Every scanned file contributes its functions to one program-wide
  // call graph; LinkCallGraph then marks everything that can reach an
  // emission sink (a function whose body touches an emitter symbol)
  // and records the witness path. This replaces the old
  // "includes-an-emitter-header" approximation, which was wrong in
  // both directions: it missed emission through a cross-TU call, and
  // it flagged whole files when only one function emitted.
  for (auto& [rel, f] : facts) {
    f.structure = AnalyzeStructure(f.lex, options.config.emitter_symbols);
  }
  std::vector<std::pair<std::string, FileStructure*>> structures;
  structures.reserve(facts.size());
  for (auto& [rel, f] : facts) {
    structures.emplace_back(rel, &f.structure);
  }
  const GraphLinkResult linked = LinkCallGraph(std::move(structures));

  // Unordered-container and float declarations seen across each file's
  // include closure (member declarations live in headers; the .cc
  // iterates and accumulates).
  std::map<std::string, std::set<std::string>> decls;
  std::map<std::string, std::set<std::string>> float_decls;
  for (auto& [rel, f] : facts) {
    decls[rel] = CollectUnorderedDecls(f.lex);
    float_decls[rel] = CollectFloatDecls(f.lex);
  }
  for (auto& [rel, f] : facts) {
    std::set<std::string> closure = decls[rel];
    std::set<std::string> float_closure = float_decls[rel];
    std::set<std::string> visited{rel};
    std::vector<std::string> frontier{rel};
    while (!frontier.empty()) {
      const std::string current = frontier.back();
      frontier.pop_back();
      auto it = includes.find(current);
      if (it == includes.end()) continue;
      for (const std::string& inc : it->second) {
        if (!visited.insert(inc).second) continue;
        auto d = decls.find(inc);
        if (d == decls.end()) {
          // Header outside the scanned set (fixtures including real
          // src/ headers): lex it once for its declarations.
          auto content = ReadFile(root / inc);
          const LexedFile lexed = content.ok() ? Lex(*content) : LexedFile{};
          decls[inc] = CollectUnorderedDecls(lexed);
          float_decls[inc] = CollectFloatDecls(lexed);
          d = decls.find(inc);
        }
        closure.insert(d->second.begin(), d->second.end());
        float_closure.insert(float_decls[inc].begin(), float_decls[inc].end());
        frontier.push_back(inc);
      }
    }
    f.unordered_names = std::move(closure);
    f.float_names = std::move(float_closure);
    f.status_fns = linked.status_fns;
  }

  // ---- Run rules + pragma filtering ---------------------------------
  // L1 include-edge diagnostics land in lexed source files and flow
  // through the same per-file pragma filter as the token rules, so a
  // deliberate exception can be annotated at the include site. L1
  // diagnostics against CMakeLists.txt or the DAG itself have no lexed
  // pragmas and are appended unfiltered (not suppressible, on purpose).
  LintReport report;
  report.files_scanned = static_cast<int>(facts.size());
  std::map<std::string, std::vector<Diagnostic>> by_file;
  if (options.check_layering) {
    const fs::path src_root = root / "src";
    if (fs::exists(src_root, ec)) {
      for (Diagnostic& diag :
           CheckLayering(src_root.string(), options.config)) {
        if (facts.count(diag.file) > 0) {
          by_file[diag.file].push_back(std::move(diag));
        } else {
          report.diagnostics.push_back(std::move(diag));
        }
      }
    }
  }
  for (const auto& [rel, f] : facts) {
    std::vector<Diagnostic> raw = CheckTokens(f, options.config);
    auto extra = by_file.find(rel);
    if (extra != by_file.end()) {
      raw.insert(raw.end(), extra->second.begin(), extra->second.end());
    }
    std::vector<Diagnostic> filtered = ApplyPragmas(rel, f.lex, std::move(raw));
    report.diagnostics.insert(report.diagnostics.end(), filtered.begin(),
                              filtered.end());
  }
  // Lock-order cycles are a property of the whole program's declared
  // acquisition DAG, not any one line — appended unfiltered (not
  // pragma-suppressible), like module-DAG cycles.
  report.diagnostics.insert(report.diagnostics.end(),
                            linked.lock_order.begin(),
                            linked.lock_order.end());

  std::sort(report.diagnostics.begin(), report.diagnostics.end());
  report.diagnostics.erase(
      std::unique(report.diagnostics.begin(), report.diagnostics.end()),
      report.diagnostics.end());
  return report;
}

std::string FormatReport(const LintReport& report) {
  std::string out;
  for (const Diagnostic& diag : report.diagnostics) {
    out += StrCat(diag.file, ":", diag.line, ": error: [", diag.rule, "] ",
                  diag.message, "\n");
  }
  out += StrCat(report.files_scanned, " files scanned, ",
                report.diagnostics.size(), " diagnostic",
                report.diagnostics.size() == 1 ? "" : "s", "\n");
  return out;
}

std::string JsonReport(const LintReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("schema").String("hivesim-lint/1");
  json.Key("files_scanned").Int(report.files_scanned);
  json.Key("diagnostics").BeginArray();
  for (const Diagnostic& diag : report.diagnostics) {
    json.BeginObject();
    json.Key("file").String(diag.file);
    json.Key("line").Int(diag.line);
    json.Key("rule").String(diag.rule);
    json.Key("message").String(diag.message);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.ToString();
}

}  // namespace hivesim::lint
