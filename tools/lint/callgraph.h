#ifndef HIVESIM_TOOLS_LINT_CALLGRAPH_H_
#define HIVESIM_TOOLS_LINT_CALLGRAPH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace hivesim::lint {

/// One function definition recovered from the token stream. The
/// extractor is not a C++ front end: it tracks namespace/class scopes
/// and brace depth, recognizes `name(args) [qualifiers] {` definition
/// heads (including constructor initializer lists and trailing return
/// types), and records which simple names the body calls. Lambdas and
/// local classes inside a body are attributed to the enclosing
/// function — exactly what reachability wants.
struct FunctionSpan {
  std::string name;       ///< Simple name ("EmitCounts").
  std::string qualified;  ///< Scoped display name ("report::EmitCounts").
  int line = 0;           ///< Line of the definition head.
  size_t body_begin = 0;  ///< Token index of the body '{'.
  size_t body_end = 0;    ///< Token index of the matching '}'.
  /// Simple names of everything the body calls (`ident(` occurrences,
  /// keywords excluded), in order of first appearance, deduplicated.
  std::vector<std::string> calls;
  /// First emitter symbol the body mentions ("" when none). A non-empty
  /// value makes this function a direct emission sink.
  std::string emitter_symbol;

  // Filled in by LinkCallGraph (lint.h):
  bool reaches_emission = false;
  /// Witness: "Caller -> Callee -> ... -> Sink -> JsonWriter". The last
  /// element is the emitter symbol the sink touches.
  std::string emission_path;
};

/// A mutex or atomic declaration, for rule C1. Mutexes must declare
/// their place in the lock-acquisition DAG (HIVESIM_ACQUIRED_AFTER /
/// HIVESIM_ACQUIRED_BEFORE edges, or HIVESIM_LOCK_ORDER_ROOT); atomics
/// must be HIVESIM_GUARDED_BY a mutex or marked
/// HIVESIM_ATOMIC_LOCK_FREE with the contract documented.
struct SyncDecl {
  enum class Kind { kMutex, kAtomic };
  Kind kind = Kind::kMutex;
  std::string name;   ///< Declared member/variable name.
  std::string scope;  ///< Enclosing class/namespace ("" at file scope).
  int line = 0;
  bool annotated = false;
  /// Declared ordering edges (mutexes only), as written in the
  /// annotation arguments; unqualified names resolve against `scope`.
  std::vector<std::string> acquired_after;
  std::vector<std::string> acquired_before;
};

/// Everything the structural pass extracts from one file.
struct FileStructure {
  std::vector<FunctionSpan> functions;
  std::vector<SyncDecl> sync_decls;
  /// Names of functions observed returning `Status` or `Result<T>` by
  /// value (definitions, declarations, and factory calls alike). Rule
  /// S1 checks `(void)` discards against the cross-TU union of these.
  std::set<std::string> status_fns;
};

/// Structural pass over one lexed file.
FileStructure AnalyzeStructure(const LexedFile& lex,
                               const std::set<std::string>& emitter_symbols);

/// Innermost function whose body contains token index `i` (functions do
/// not nest in the extracted model, so "innermost" is the latest span
/// covering `i`). nullptr when the token is at file/class scope.
const FunctionSpan* EnclosingFunction(const FileStructure& structure,
                                      size_t token_index);

}  // namespace hivesim::lint

#endif  // HIVESIM_TOOLS_LINT_CALLGRAPH_H_
