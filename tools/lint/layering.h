#ifndef HIVESIM_TOOLS_LINT_LAYERING_H_
#define HIVESIM_TOOLS_LINT_LAYERING_H_

#include <string>
#include <vector>

#include "lint/lint.h"

namespace hivesim::lint {

/// L1: validates the module layering under `src_root` against the
/// declared DAG in `config.module_dag`:
///   1. the declared DAG itself must be acyclic,
///   2. every `target_link_libraries(<prefix><mod> ...)` edge in each
///      module's CMakeLists.txt must stay inside the transitive
///      closure of the declared direct deps,
///   3. every `#include "other_module/..."` edge in the module's
///      sources must stay inside the same closure.
/// Include-edge diagnostics anchor to the include line and honor allow
/// pragmas (applied by the driver); CMake diagnostics anchor to the
/// `target_link_libraries` line and are not suppressible — fixing the
/// DAG declaration is the only way out, on purpose.
std::vector<Diagnostic> CheckLayering(const std::string& src_root,
                                      const LintConfig& config);

}  // namespace hivesim::lint

#endif  // HIVESIM_TOOLS_LINT_LAYERING_H_
