#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "lint/lint.h"

namespace hivesim::lint {

namespace {

/// D1: entropy sources that break seeded replay. `rand`-family and
/// kernel entropy syscalls are matched as identifier tokens, so the
/// same words inside strings and comments never fire.
const std::set<std::string>& BannedEntropy() {
  static const auto& banned = *new std::set<std::string>{
      "random_device", "rand",    "srand",   "rand_r",    "random_r",
      "drand48",       "lrand48", "mrand48", "erand48",   "getrandom",
      "getentropy",
  };
  return banned;
}

/// D2: wall-clock reads. Simulation logic must use sim::Simulator time;
/// host-side timing goes through hivesim::HostClock (common/host_clock.h).
const std::set<std::string>& BannedClocks() {
  static const auto& banned = *new std::set<std::string>{
      "steady_clock",  "system_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
  };
  return banned;
}

/// C functions that are only nondeterministic when *called*; matched as
/// identifier-followed-by-'(' so variables named `time` stay legal.
const std::set<std::string>& BannedClockCalls() {
  static const auto& banned = *new std::set<std::string>{"time", "clock"};
  return banned;
}

bool SuffixMatch(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
         0;
}

bool Allowlisted(const LintConfig& config, const std::string& rule,
                 const std::string& path) {
  auto it = config.allowlist.find(rule);
  if (it == config.allowlist.end()) return false;
  for (const std::string& suffix : it->second) {
    if (SuffixMatch(path, suffix)) return true;
  }
  return false;
}

/// Template-bracket depth delta for one token ('<' opens, '>' closes,
/// fused '>>' closes two as in `map<int, vector<int>>`).
int AngleDelta(const Token& tok) {
  if (tok.kind != TokKind::kPunct) return 0;
  if (tok.text == "<") return 1;
  if (tok.text == ">") return -1;
  if (tok.text == ">>") return -2;
  return 0;
}

/// When the enclosing function can reach emission, the diagnostic says
/// so and shows the call-graph witness — nondeterminism there does not
/// just corrupt state, it lands in committed goldens.
std::string ReachNote(const FileFacts& facts, size_t token_index) {
  const FunctionSpan* fn = EnclosingFunction(facts.structure, token_index);
  if (fn == nullptr || !fn->reaches_emission) return "";
  return StrCat(" (reaches emission: ", fn->emission_path, ")");
}

void CheckEntropyAndClocks(const FileFacts& facts, const LintConfig& config,
                           std::vector<Diagnostic>* out) {
  const auto& tokens = facts.lex.tokens;
  const bool d1_allowed = Allowlisted(config, "D1", facts.path);
  const bool d2_allowed = Allowlisted(config, "D2", facts.path);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    if (!d1_allowed && BannedEntropy().count(tok.text) > 0) {
      out->push_back(
          {facts.path, tok.line, "D1",
           StrCat("nondeterministic entropy source '", tok.text,
                  "'; draw from the seeded hivesim::Rng (common/rng.h)",
                  ReachNote(facts, i))});
      continue;
    }
    if (d2_allowed) continue;
    const bool is_clock_type = BannedClocks().count(tok.text) > 0;
    const bool is_clock_call =
        BannedClockCalls().count(tok.text) > 0 && i + 1 < tokens.size() &&
        tokens[i + 1].kind == TokKind::kPunct && tokens[i + 1].text == "(" &&
        // `foo.time(...)` / `foo->time(...)` are member calls, not libc.
        (i == 0 || tokens[i - 1].kind != TokKind::kPunct ||
         (tokens[i - 1].text != "." && tokens[i - 1].text != "->"));
    if (is_clock_type || is_clock_call) {
      out->push_back(
          {facts.path, tok.line, "D2",
           StrCat("wall-clock read '", tok.text,
                  "'; simulation logic uses sim::Simulator::Now(), host "
                  "timing goes through hivesim::HostClock "
                  "(common/host_clock.h)",
                  ReachNote(facts, i))});
    }
  }
}

/// D3/D5: range-for over an unordered container. Only a *bare*
/// iterated expression fires (`for (x : map_)`, `for (x : this->map_)`,
/// `for (x : *map)`): a wrapped expression like
/// `for (k : SortedKeys(map_))` is exactly the sanctioned fix and must
/// not be flagged.
///
/// D5 fires when the loop body accumulates into a float/double with a
/// compound assignment: hash order then picks the reduction order, and
/// floating-point addition is not associative, so the *value* is
/// nondeterministic wherever it flows — emission-reachable or not. D3
/// fires for the remaining cases, gated on the enclosing function
/// actually reaching an emission sink through the cross-TU call graph
/// (the witness path is part of the message).
void CheckUnorderedIteration(const FileFacts& facts, const LintConfig& config,
                             std::vector<Diagnostic>* out) {
  if (facts.unordered_names.empty()) return;
  const bool d3_allowed = Allowlisted(config, "D3", facts.path);
  const bool d5_allowed = Allowlisted(config, "D5", facts.path);
  if (d3_allowed && d5_allowed) return;
  const auto& tokens = facts.lex.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier || tokens[i].text != "for") {
      continue;
    }
    if (tokens[i + 1].kind != TokKind::kPunct || tokens[i + 1].text != "(") {
      continue;
    }
    // Scan the for-header; a ';' at depth 1 means a classic for loop.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    bool classic = false;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && t.text == ";") classic = true;
      if (depth == 1 && t.text == ":" && colon == 0) colon = j;
    }
    if (classic || colon == 0 || close == 0) continue;

    // The iterated expression: tokens (colon, close).
    std::string iterated;
    int idents = 0;
    bool bare = true;
    for (size_t j = colon + 1; j < close; ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokKind::kIdentifier) {
        if (t.text == "this") continue;
        ++idents;
        iterated = t.text;
        continue;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == "*" || t.text == "." || t.text == "->" ||
           t.text == "(" || t.text == ")")) {
        continue;
      }
      bare = false;
      break;
    }
    if (!bare || idents != 1) continue;
    if (facts.unordered_names.count(iterated) == 0) continue;

    // Loop body: a braced block after the header, or one statement.
    size_t body_begin = close + 1;
    size_t body_end = body_begin;
    if (body_begin < tokens.size() && tokens[body_begin].kind == TokKind::kPunct &&
        tokens[body_begin].text == "{") {
      int body_depth = 0;
      for (size_t j = body_begin; j < tokens.size(); ++j) {
        if (tokens[j].kind != TokKind::kPunct) continue;
        if (tokens[j].text == "{") ++body_depth;
        if (tokens[j].text == "}") {
          --body_depth;
          if (body_depth == 0) {
            body_end = j;
            break;
          }
        }
      }
    } else {
      while (body_end < tokens.size() &&
             !(tokens[body_end].kind == TokKind::kPunct &&
               tokens[body_end].text == ";")) {
        ++body_end;
      }
    }
    // FP accumulation: `f +=` / `-=` / `*=` / `/=` with a float LHS
    // (the lexer emits compound assignments as two tokens).
    bool fp_accumulation = false;
    std::string accumulator;
    for (size_t j = body_begin; j + 2 < tokens.size() && j < body_end; ++j) {
      if (tokens[j].kind != TokKind::kIdentifier) continue;
      if (facts.float_names.count(tokens[j].text) == 0) continue;
      if (tokens[j + 1].kind != TokKind::kPunct) continue;
      const std::string& op = tokens[j + 1].text;
      if (op != "+" && op != "-" && op != "*" && op != "/") continue;
      if (tokens[j + 2].kind == TokKind::kPunct && tokens[j + 2].text == "=") {
        fp_accumulation = true;
        accumulator = tokens[j].text;
        break;
      }
    }

    if (fp_accumulation) {
      if (d5_allowed) continue;
      out->push_back(
          {facts.path, tokens[colon].line, "D5",
           StrCat("range-for over unordered container '", iterated,
                  "' accumulates into floating-point '", accumulator,
                  "'; hash order picks the (non-associative) reduction "
                  "order, so the value is nondeterministic — reduce in "
                  "sorted key order",
                  ReachNote(facts, colon))});
      continue;
    }
    if (d3_allowed) continue;
    const FunctionSpan* fn = EnclosingFunction(facts.structure, colon);
    if (fn == nullptr || !fn->reaches_emission) continue;
    out->push_back(
        {facts.path, tokens[colon].line, "D3",
         StrCat("range-for over unordered container '", iterated, "' in '",
                fn->name, "', which reaches emission (", fn->emission_path,
                "); emit in sorted key order instead")});
  }
}

/// D4: formatting or hashing raw pointer values. Pointer identity
/// changes across runs (ASLR, allocator state), so it may never feed
/// reports, traces, hashes, or ordering.
void CheckPointerIdentity(const FileFacts& facts, const LintConfig& config,
                          std::vector<Diagnostic>* out) {
  if (Allowlisted(config, "D4", facts.path)) return;
  const auto& tokens = facts.lex.tokens;
  // Built without a literal so the linter can lint its own sources.
  const std::string percent_p = std::string("%") + "p";
  const std::set<std::string> int_names = {
      "uintptr_t", "intptr_t", "size_t", "uint64_t", "int64_t",
      "uint32_t",  "int32_t",  "long",   "unsigned", "int"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kString &&
        tok.text.find(percent_p) != std::string::npos) {
      out->push_back({facts.path, tok.line, "D4",
                      StrCat("format string contains '", percent_p,
                             "'; pointer values are nondeterministic "
                             "across runs")});
      continue;
    }
    if (tok.kind != TokKind::kIdentifier) continue;
    const bool is_hash = tok.text == "hash";
    const bool is_reinterpret = tok.text == "reinterpret_cast";
    const bool is_static_cast = tok.text == "static_cast";
    if (!is_hash && !is_reinterpret && !is_static_cast) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokKind::kPunct ||
        tokens[i + 1].text != "<") {
      continue;
    }
    // Scan the template argument list.
    int depth = 0;
    bool has_star = false;
    bool has_void = false;
    bool has_int = false;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      depth += AngleDelta(tokens[j]);
      if (depth <= 0) break;
      if (tokens[j].kind == TokKind::kPunct && tokens[j].text == "*") {
        has_star = true;
      }
      if (tokens[j].kind == TokKind::kIdentifier) {
        if (tokens[j].text == "void") has_void = true;
        if (int_names.count(tokens[j].text) > 0) has_int = true;
      }
    }
    if (is_hash && has_star) {
      out->push_back({facts.path, tok.line, "D4",
                      StrCat("std::hash over a pointer type; pointer "
                             "identity is nondeterministic across runs",
                             ReachNote(facts, i))});
    } else if (is_reinterpret && has_int) {
      out->push_back({facts.path, tok.line, "D4",
                      StrCat("reinterpret_cast of a pointer to an integer; "
                             "pointer values must not be hashed, ordered, "
                             "or printed",
                             ReachNote(facts, i))});
    } else if (is_static_cast && has_void && has_star) {
      out->push_back({facts.path, tok.line, "D4",
                      StrCat("cast to void* (pointer formatting); pointer "
                             "values are nondeterministic across runs",
                             ReachNote(facts, i))});
    }
  }
}

/// C1: every mutex must declare its lock-order story, every atomic its
/// concurrency contract (see common/thread_annotations.h). The
/// declarations were collected by the structural pass; this check only
/// reports the unannotated ones. Lock-order *cycles* are cross-TU and
/// reported by LinkCallGraph, not here.
void CheckSyncAnnotations(const FileFacts& facts, const LintConfig& config,
                          std::vector<Diagnostic>* out) {
  if (Allowlisted(config, "C1", facts.path)) return;
  for (const SyncDecl& decl : facts.structure.sync_decls) {
    if (decl.annotated) continue;
    if (decl.kind == SyncDecl::Kind::kMutex) {
      out->push_back(
          {facts.path, decl.line, "C1",
           StrCat("mutex '", decl.name,
                  "' declares no lock-order story; add "
                  "HIVESIM_ACQUIRED_BEFORE/_AFTER edges or "
                  "HIVESIM_LOCK_ORDER_ROOT (common/thread_annotations.h)")});
    } else {
      out->push_back(
          {facts.path, decl.line, "C1",
           StrCat("std::atomic '", decl.name,
                  "' declares no concurrency contract; add "
                  "HIVESIM_GUARDED_BY(mu) or mark it "
                  "HIVESIM_ATOMIC_LOCK_FREE with the ordering documented "
                  "(common/thread_annotations.h)")});
    }
  }
}

/// S1: `(void)Foo(...)` / `static_cast<void>(Foo(...))` where Foo is
/// known (cross-TU) to return Status or Result<T> by value. The cast
/// silences [[nodiscard]], so each one must carry an allow(S1) pragma
/// whose reason says why dropping the error is safe.
void CheckStatusDiscards(const FileFacts& facts, const LintConfig& config,
                         std::vector<Diagnostic>* out) {
  if (facts.status_fns.empty()) return;
  if (Allowlisted(config, "S1", facts.path)) return;
  const auto& tokens = facts.lex.tokens;
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    size_t after = 0;
    int line = 0;
    if (tokens[i].kind == TokKind::kPunct && tokens[i].text == "(" &&
        tokens[i + 1].kind == TokKind::kIdentifier &&
        tokens[i + 1].text == "void" && tokens[i + 2].kind == TokKind::kPunct &&
        tokens[i + 2].text == ")" &&
        // `int f(void)` parameter lists have an identifier before '('.
        (i == 0 || tokens[i - 1].kind != TokKind::kIdentifier)) {
      after = i + 3;
      line = tokens[i].line;
    } else if (tokens[i].kind == TokKind::kIdentifier &&
               tokens[i].text == "static_cast" && i + 4 < tokens.size() &&
               tokens[i + 1].kind == TokKind::kPunct &&
               tokens[i + 1].text == "<" &&
               tokens[i + 2].kind == TokKind::kIdentifier &&
               tokens[i + 2].text == "void" &&
               tokens[i + 3].kind == TokKind::kPunct &&
               tokens[i + 3].text == ">" &&
               tokens[i + 4].kind == TokKind::kPunct &&
               tokens[i + 4].text == "(") {
      after = i + 5;
      line = tokens[i].line;
    } else {
      continue;
    }
    // The discarded expression: an identifier chain ending in a call.
    std::string callee;
    size_t j = after;
    while (j < tokens.size()) {
      const Token& t = tokens[j];
      if (t.kind == TokKind::kIdentifier) {
        callee = t.text;
        ++j;
        continue;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == "::" || t.text == "." || t.text == "->")) {
        ++j;
        continue;
      }
      break;
    }
    if (callee.empty() || j >= tokens.size() ||
        tokens[j].kind != TokKind::kPunct || tokens[j].text != "(") {
      continue;
    }
    if (facts.status_fns.count(callee) == 0) continue;
    out->push_back(
        {facts.path, line, "S1",
         StrCat("'(void)' discards the Status/Result of '", callee,
                "'; handle the error, or keep the discard audited with "
                "'// hivesim-lint: allow(S1) reason=<why dropping the "
                "error is safe>'")});
  }
}

}  // namespace

std::set<std::string> CollectUnorderedDecls(const LexedFile& lex) {
  std::set<std::string> names;
  const auto& tokens = lex.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier) continue;
    if (tokens[i].text != "unordered_map" && tokens[i].text != "unordered_set") {
      continue;
    }
    if (tokens[i + 1].kind != TokKind::kPunct || tokens[i + 1].text != "<") {
      continue;
    }
    // Find the end of the template argument list, then take the
    // declared identifier right after it (skipping &, *, and const).
    int depth = 0;
    size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      depth += AngleDelta(tokens[j]);
      if (depth <= 0) break;
    }
    for (size_t k = j + 1; k < tokens.size(); ++k) {
      const Token& t = tokens[k];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (t.kind == TokKind::kIdentifier && t.text == "const") continue;
      if (t.kind == TokKind::kIdentifier) names.insert(t.text);
      break;
    }
  }
  return names;
}

std::set<std::string> CollectFloatDecls(const LexedFile& lex) {
  std::set<std::string> names;
  const auto& tokens = lex.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier) continue;
    if (tokens[i].text != "double" && tokens[i].text != "float") continue;
    // The declared name follows, skipping cv/ref/pointer decoration.
    for (size_t k = i + 1; k < tokens.size(); ++k) {
      const Token& t = tokens[k];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (t.kind == TokKind::kIdentifier && t.text == "const") continue;
      if (t.kind == TokKind::kIdentifier) names.insert(t.text);
      break;
    }
  }
  return names;
}

std::vector<Diagnostic> CheckTokens(const FileFacts& facts,
                                    const LintConfig& config) {
  std::vector<Diagnostic> out;
  CheckEntropyAndClocks(facts, config, &out);
  CheckUnorderedIteration(facts, config, &out);
  CheckPointerIdentity(facts, config, &out);
  CheckSyncAnnotations(facts, config, &out);
  CheckStatusDiscards(facts, config, &out);
  return out;
}

std::vector<Diagnostic> ApplyPragmas(const std::string& path,
                                     const LexedFile& lex,
                                     std::vector<Diagnostic> raw) {
  std::vector<Diagnostic> out;
  std::map<size_t, bool> used;  // pragma index -> suppressed something
  for (size_t p = 0; p < lex.pragmas.size(); ++p) {
    const Pragma& pragma = lex.pragmas[p];
    if (pragma.malformed) {
      out.push_back({path, pragma.line, "P1",
                     StrCat("malformed hivesim-lint pragma: ", pragma.error,
                            "; grammar is 'hivesim-lint: allow(<rule>) "
                            "reason=<why>'")});
      continue;
    }
    used[p] = false;
  }
  for (Diagnostic& diag : raw) {
    bool suppressed = false;
    for (size_t p = 0; p < lex.pragmas.size(); ++p) {
      const Pragma& pragma = lex.pragmas[p];
      if (pragma.malformed || pragma.rule != diag.rule) continue;
      if (pragma.line == diag.line || pragma.line + 1 == diag.line) {
        used[p] = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(diag));
  }
  for (const auto& [p, was_used] : used) {
    if (was_used) continue;
    const Pragma& pragma = lex.pragmas[p];
    out.push_back({path, pragma.line, "P1",
                   StrCat("unused suppression for rule '", pragma.rule,
                          "': no matching diagnostic on this or the next "
                          "line; delete the stale pragma")});
  }
  return out;
}

}  // namespace hivesim::lint
