#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "lint/lint.h"

namespace hivesim::lint {

namespace {

/// D1: entropy sources that break seeded replay. `rand`-family and
/// kernel entropy syscalls are matched as identifier tokens, so the
/// same words inside strings and comments never fire.
const std::set<std::string>& BannedEntropy() {
  static const auto& banned = *new std::set<std::string>{
      "random_device", "rand",    "srand",   "rand_r",    "random_r",
      "drand48",       "lrand48", "mrand48", "erand48",   "getrandom",
      "getentropy",
  };
  return banned;
}

/// D2: wall-clock reads. Simulation logic must use sim::Simulator time;
/// host-side timing goes through hivesim::HostClock (common/host_clock.h).
const std::set<std::string>& BannedClocks() {
  static const auto& banned = *new std::set<std::string>{
      "steady_clock",  "system_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
  };
  return banned;
}

/// C functions that are only nondeterministic when *called*; matched as
/// identifier-followed-by-'(' so variables named `time` stay legal.
const std::set<std::string>& BannedClockCalls() {
  static const auto& banned = *new std::set<std::string>{"time", "clock"};
  return banned;
}

bool SuffixMatch(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  return path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
         0;
}

bool Allowlisted(const LintConfig& config, const std::string& rule,
                 const std::string& path) {
  auto it = config.allowlist.find(rule);
  if (it == config.allowlist.end()) return false;
  for (const std::string& suffix : it->second) {
    if (SuffixMatch(path, suffix)) return true;
  }
  return false;
}

/// Template-bracket depth delta for one token ('<' opens, '>' closes,
/// fused '>>' closes two as in `map<int, vector<int>>`).
int AngleDelta(const Token& tok) {
  if (tok.kind != TokKind::kPunct) return 0;
  if (tok.text == "<") return 1;
  if (tok.text == ">") return -1;
  if (tok.text == ">>") return -2;
  return 0;
}

void CheckEntropyAndClocks(const FileFacts& facts, const LintConfig& config,
                           std::vector<Diagnostic>* out) {
  const auto& tokens = facts.lex.tokens;
  const bool d1_allowed = Allowlisted(config, "D1", facts.path);
  const bool d2_allowed = Allowlisted(config, "D2", facts.path);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    if (!d1_allowed && BannedEntropy().count(tok.text) > 0) {
      out->push_back(
          {facts.path, tok.line, "D1",
           StrCat("nondeterministic entropy source '", tok.text,
                  "'; draw from the seeded hivesim::Rng (common/rng.h)")});
      continue;
    }
    if (d2_allowed) continue;
    const bool is_clock_type = BannedClocks().count(tok.text) > 0;
    const bool is_clock_call =
        BannedClockCalls().count(tok.text) > 0 && i + 1 < tokens.size() &&
        tokens[i + 1].kind == TokKind::kPunct && tokens[i + 1].text == "(" &&
        // `foo.time(...)` / `foo->time(...)` are member calls, not libc.
        (i == 0 || tokens[i - 1].kind != TokKind::kPunct ||
         (tokens[i - 1].text != "." && tokens[i - 1].text != "->"));
    if (is_clock_type || is_clock_call) {
      out->push_back(
          {facts.path, tok.line, "D2",
           StrCat("wall-clock read '", tok.text,
                  "'; simulation logic uses sim::Simulator::Now(), host "
                  "timing goes through hivesim::HostClock "
                  "(common/host_clock.h)")});
    }
  }
}

/// D3: range-for over an unordered container in a file that can reach
/// report/trace emission. Only a *bare* iterated expression fires
/// (`for (x : map_)`, `for (x : this->map_)`, `for (x : *map)`): a
/// wrapped expression like `for (k : SortedKeys(map_))` is exactly the
/// sanctioned fix and must not be flagged.
void CheckUnorderedIteration(const FileFacts& facts, const LintConfig& config,
                             std::vector<Diagnostic>* out) {
  if (!facts.reaches_emission) return;
  if (facts.unordered_names.empty()) return;
  if (Allowlisted(config, "D3", facts.path)) return;
  const auto& tokens = facts.lex.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier || tokens[i].text != "for") {
      continue;
    }
    if (tokens[i + 1].kind != TokKind::kPunct || tokens[i + 1].text != "(") {
      continue;
    }
    // Scan the for-header; a ';' at depth 1 means a classic for loop.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    bool classic = false;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      if (t.text == ")" || t.text == "]" || t.text == "}") {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (depth == 1 && t.text == ";") classic = true;
      if (depth == 1 && t.text == ":" && colon == 0) colon = j;
    }
    if (classic || colon == 0 || close == 0) continue;

    // The iterated expression: tokens (colon, close).
    std::string iterated;
    int idents = 0;
    bool bare = true;
    for (size_t j = colon + 1; j < close; ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokKind::kIdentifier) {
        if (t.text == "this") continue;
        ++idents;
        iterated = t.text;
        continue;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == "*" || t.text == "." || t.text == "->" ||
           t.text == "(" || t.text == ")")) {
        continue;
      }
      bare = false;
      break;
    }
    if (!bare || idents != 1) continue;
    if (facts.unordered_names.count(iterated) == 0) continue;
    out->push_back(
        {facts.path, tokens[colon].line, "D3",
         StrCat("range-for over unordered container '", iterated,
                "' in an emission-reachable file; emit in sorted key "
                "order instead")});
  }
}

/// D4: formatting or hashing raw pointer values. Pointer identity
/// changes across runs (ASLR, allocator state), so it may never feed
/// reports, traces, hashes, or ordering.
void CheckPointerIdentity(const FileFacts& facts, const LintConfig& config,
                          std::vector<Diagnostic>* out) {
  if (Allowlisted(config, "D4", facts.path)) return;
  const auto& tokens = facts.lex.tokens;
  // Built without a literal so the linter can lint its own sources.
  const std::string percent_p = std::string("%") + "p";
  const std::set<std::string> int_names = {
      "uintptr_t", "intptr_t", "size_t", "uint64_t", "int64_t",
      "uint32_t",  "int32_t",  "long",   "unsigned", "int"};
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kString &&
        tok.text.find(percent_p) != std::string::npos) {
      out->push_back({facts.path, tok.line, "D4",
                      StrCat("format string contains '", percent_p,
                             "'; pointer values are nondeterministic "
                             "across runs")});
      continue;
    }
    if (tok.kind != TokKind::kIdentifier) continue;
    const bool is_hash = tok.text == "hash";
    const bool is_reinterpret = tok.text == "reinterpret_cast";
    const bool is_static_cast = tok.text == "static_cast";
    if (!is_hash && !is_reinterpret && !is_static_cast) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokKind::kPunct ||
        tokens[i + 1].text != "<") {
      continue;
    }
    // Scan the template argument list.
    int depth = 0;
    bool has_star = false;
    bool has_void = false;
    bool has_int = false;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      depth += AngleDelta(tokens[j]);
      if (depth <= 0) break;
      if (tokens[j].kind == TokKind::kPunct && tokens[j].text == "*") {
        has_star = true;
      }
      if (tokens[j].kind == TokKind::kIdentifier) {
        if (tokens[j].text == "void") has_void = true;
        if (int_names.count(tokens[j].text) > 0) has_int = true;
      }
    }
    if (is_hash && has_star) {
      out->push_back({facts.path, tok.line, "D4",
                      "std::hash over a pointer type; pointer identity is "
                      "nondeterministic across runs"});
    } else if (is_reinterpret && has_int) {
      out->push_back({facts.path, tok.line, "D4",
                      "reinterpret_cast of a pointer to an integer; pointer "
                      "values must not be hashed, ordered, or printed"});
    } else if (is_static_cast && has_void && has_star) {
      out->push_back({facts.path, tok.line, "D4",
                      "cast to void* (pointer formatting); pointer values "
                      "are nondeterministic across runs"});
    }
  }
}

}  // namespace

std::set<std::string> CollectUnorderedDecls(const LexedFile& lex) {
  std::set<std::string> names;
  const auto& tokens = lex.tokens;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kIdentifier) continue;
    if (tokens[i].text != "unordered_map" && tokens[i].text != "unordered_set") {
      continue;
    }
    if (tokens[i + 1].kind != TokKind::kPunct || tokens[i + 1].text != "<") {
      continue;
    }
    // Find the end of the template argument list, then take the
    // declared identifier right after it (skipping &, *, and const).
    int depth = 0;
    size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      depth += AngleDelta(tokens[j]);
      if (depth <= 0) break;
    }
    for (size_t k = j + 1; k < tokens.size(); ++k) {
      const Token& t = tokens[k];
      if (t.kind == TokKind::kPunct && (t.text == "&" || t.text == "*")) {
        continue;
      }
      if (t.kind == TokKind::kIdentifier && t.text == "const") continue;
      if (t.kind == TokKind::kIdentifier) names.insert(t.text);
      break;
    }
  }
  return names;
}

std::vector<Diagnostic> CheckTokens(const FileFacts& facts,
                                    const LintConfig& config) {
  std::vector<Diagnostic> out;
  CheckEntropyAndClocks(facts, config, &out);
  CheckUnorderedIteration(facts, config, &out);
  CheckPointerIdentity(facts, config, &out);
  return out;
}

std::vector<Diagnostic> ApplyPragmas(const std::string& path,
                                     const LexedFile& lex,
                                     std::vector<Diagnostic> raw) {
  std::vector<Diagnostic> out;
  std::map<size_t, bool> used;  // pragma index -> suppressed something
  for (size_t p = 0; p < lex.pragmas.size(); ++p) {
    const Pragma& pragma = lex.pragmas[p];
    if (pragma.malformed) {
      out.push_back({path, pragma.line, "P1",
                     StrCat("malformed hivesim-lint pragma: ", pragma.error,
                            "; grammar is 'hivesim-lint: allow(<rule>) "
                            "reason=<why>'")});
      continue;
    }
    used[p] = false;
  }
  for (Diagnostic& diag : raw) {
    bool suppressed = false;
    for (size_t p = 0; p < lex.pragmas.size(); ++p) {
      const Pragma& pragma = lex.pragmas[p];
      if (pragma.malformed || pragma.rule != diag.rule) continue;
      if (pragma.line == diag.line || pragma.line + 1 == diag.line) {
        used[p] = true;
        suppressed = true;
      }
    }
    if (!suppressed) out.push_back(std::move(diag));
  }
  for (const auto& [p, was_used] : used) {
    if (was_used) continue;
    const Pragma& pragma = lex.pragmas[p];
    out.push_back({path, pragma.line, "P1",
                   StrCat("unused suppression for rule '", pragma.rule,
                          "': no matching diagnostic on this or the next "
                          "line; delete the stale pragma")});
  }
  return out;
}

}  // namespace hivesim::lint
