#ifndef HIVESIM_TOOLS_LINT_LEXER_H_
#define HIVESIM_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace hivesim::lint {

/// Token kinds the rules care about. The lexer is not a full C++
/// front end: it only needs to distinguish identifiers from the
/// literals and punctuation around them so rules can match *code*
/// (identifier tokens) without tripping on the same words inside
/// strings or comments.
enum class TokKind {
  kIdentifier,
  kNumber,
  kString,  ///< text holds the literal's contents (no quotes).
  kCharLit,
  kPunct,  ///< one of the multi-char operators below, or a single char.
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// A `// hivesim-lint: allow(<rule>) reason=...` suppression comment.
/// Malformed pragmas are surfaced as diagnostics by the driver so a
/// typo'd suppression can never silently allow a violation.
struct Pragma {
  int line = 0;
  std::string rule;    ///< e.g. "D2"; empty when malformed.
  std::string reason;  ///< text after `reason=`, trimmed.
  bool malformed = false;
  std::string error;  ///< why it is malformed.
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Pragma> pragmas;
  /// Targets of `#include "..."` directives, in order of appearance.
  std::vector<std::string> quoted_includes;
};

/// Tokenizes one source file. Comments and whitespace are consumed
/// (comments are scanned for lint pragmas first); string/char literals
/// become single tokens; `::`, `->`, `<<`, `>>` stay fused so rules can
/// tell `std::foo` and stream inserts apart from template brackets.
LexedFile Lex(const std::string& content);

}  // namespace hivesim::lint

#endif  // HIVESIM_TOOLS_LINT_LEXER_H_
