#include "lint/layering.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"

namespace hivesim::lint {

namespace {

namespace fs = std::filesystem;

/// DFS cycle detection over the declared DAG; reports one diagnostic
/// per back edge, naming the cycle path.
void CheckAcyclic(const LintConfig& config, std::vector<Diagnostic>* out) {
  enum class Mark { kWhite, kGrey, kBlack };
  std::map<std::string, Mark> marks;
  for (const auto& [mod, deps] : config.module_dag) marks[mod] = Mark::kWhite;

  // Iterative DFS with an explicit path so the cycle can be printed.
  struct Frame {
    std::string mod;
    std::vector<std::string> deps;
    size_t next = 0;
  };
  for (const auto& [root, unused] : config.module_dag) {
    if (marks[root] != Mark::kWhite) continue;
    std::vector<Frame> stack;
    auto push = [&](const std::string& mod) {
      marks[mod] = Mark::kGrey;
      Frame frame;
      frame.mod = mod;
      auto it = config.module_dag.find(mod);
      if (it != config.module_dag.end()) {
        frame.deps.assign(it->second.begin(), it->second.end());
      }
      stack.push_back(std::move(frame));
    };
    push(root);
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= top.deps.size()) {
        marks[top.mod] = Mark::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string dep = top.deps[top.next++];
      if (config.module_dag.count(dep) == 0) continue;  // Checked later.
      if (marks[dep] == Mark::kGrey) {
        std::string cycle = dep;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          cycle = it->mod + " -> " + cycle;
          if (it->mod == dep) break;
        }
        out->push_back({"module DAG", 0, "L1",
                        StrCat("declared module DAG has a cycle: ", cycle)});
        marks[dep] = Mark::kBlack;  // Report each cycle once.
        continue;
      }
      if (marks[dep] == Mark::kWhite) push(dep);
    }
  }
}

/// Transitive closure of the declared direct deps.
std::map<std::string, std::set<std::string>> Closure(
    const LintConfig& config) {
  std::map<std::string, std::set<std::string>> closure;
  // Iterate to fixpoint; the graph is tiny.
  for (const auto& [mod, deps] : config.module_dag) closure[mod] = deps;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [mod, deps] : closure) {
      std::set<std::string> grown = deps;
      for (const std::string& dep : deps) {
        auto it = closure.find(dep);
        if (it == closure.end()) continue;
        grown.insert(it->second.begin(), it->second.end());
      }
      if (grown.size() != deps.size()) {
        deps = std::move(grown);
        changed = true;
      }
    }
  }
  return closure;
}

std::string FormatAllowed(const std::set<std::string>& allowed) {
  if (allowed.empty()) return "nothing";
  std::string joined;
  for (const std::string& dep : allowed) {
    if (!joined.empty()) joined += ", ";
    joined += dep;
  }
  return joined;
}

/// Parses `target_link_libraries(<prefix><mod> ...)` calls out of one
/// CMakeLists.txt, returning (line, dep-module) pairs for arguments
/// that carry the library prefix.
std::vector<std::pair<int, std::string>> ParseLinkEdges(
    const std::string& cmake_text, const std::string& module,
    const std::string& lib_prefix) {
  std::vector<std::pair<int, std::string>> edges;
  const std::string call = "target_link_libraries";
  const std::string self = lib_prefix + module;
  size_t pos = 0;
  while ((pos = cmake_text.find(call, pos)) != std::string::npos) {
    const int line =
        1 + static_cast<int>(
                std::count(cmake_text.begin(), cmake_text.begin() + pos, '\n'));
    size_t open = cmake_text.find('(', pos + call.size());
    if (open == std::string::npos) break;
    size_t close = cmake_text.find(')', open);
    if (close == std::string::npos) break;
    std::istringstream args(cmake_text.substr(open + 1, close - open - 1));
    std::string arg;
    bool ours = false;
    bool first = true;
    while (args >> arg) {
      if (first) {
        ours = arg == self;
        first = false;
        continue;
      }
      if (!ours) continue;
      if (arg.compare(0, lib_prefix.size(), lib_prefix) == 0) {
        edges.emplace_back(line, arg.substr(lib_prefix.size()));
      }
    }
    pos = close;
  }
  return edges;
}

/// Extracts `#include "module/..."` edges with line numbers from one
/// source file, restricted to known module names.
std::vector<std::pair<int, std::string>> ParseIncludeEdges(
    const std::string& text, const LintConfig& config) {
  std::vector<std::pair<int, std::string>> edges;
  std::istringstream in(text);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    size_t hash = line_text.find_first_not_of(" \t");
    if (hash == std::string::npos || line_text[hash] != '#') continue;
    size_t inc = line_text.find("include", hash + 1);
    if (inc == std::string::npos) continue;
    size_t q1 = line_text.find('"', inc);
    if (q1 == std::string::npos) continue;
    size_t slash = line_text.find('/', q1 + 1);
    size_t q2 = line_text.find('"', q1 + 1);
    if (slash == std::string::npos || q2 == std::string::npos || slash > q2) {
      continue;
    }
    const std::string target = line_text.substr(q1 + 1, slash - q1 - 1);
    if (config.module_dag.count(target) > 0) edges.emplace_back(line, target);
  }
  return edges;
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<Diagnostic> CheckLayering(const std::string& src_root,
                                      const LintConfig& config) {
  std::vector<Diagnostic> out;
  CheckAcyclic(config, &out);
  const auto closure = Closure(config);

  std::error_code ec;
  std::vector<std::string> modules;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(src_root, ec)) {
    if (entry.is_directory()) modules.push_back(entry.path().filename().string());
  }
  std::sort(modules.begin(), modules.end());

  for (const std::string& module : modules) {
    const fs::path dir = fs::path(src_root) / module;
    const std::string rel_dir = StrCat("src/", module);
    auto allowed_it = closure.find(module);
    if (allowed_it == closure.end()) {
      out.push_back({rel_dir, 0, "L1",
                     StrCat("module '", module,
                            "' is not in the declared DAG; add it to the "
                            "layering config (tools/lint/lint.h) with its "
                            "dependencies")});
      continue;
    }
    const std::set<std::string>& allowed = allowed_it->second;

    // CMake link edges.
    const std::string cmake_text = ReadFileOrEmpty(dir / "CMakeLists.txt");
    for (const auto& [line, dep] :
         ParseLinkEdges(cmake_text, module, config.lib_prefix)) {
      if (allowed.count(dep) == 0) {
        out.push_back(
            {StrCat(rel_dir, "/CMakeLists.txt"), line, "L1",
             StrCat("link edge ", module, " -> ", dep,
                    " violates the declared module DAG (", module,
                    " may depend on: ", FormatAllowed(allowed), ")")});
      }
    }

    // Include edges from every source file in the module.
    std::vector<fs::path> files;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
      const std::string ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      const std::string text = ReadFileOrEmpty(file);
      for (const auto& [line, dep] : ParseIncludeEdges(text, config)) {
        if (dep != module && allowed.count(dep) == 0) {
          out.push_back(
              {StrCat(rel_dir, "/", file.filename().string()), line, "L1",
               StrCat("include edge ", module, " -> ", dep,
                      " violates the declared module DAG (", module,
                      " may depend on: ", FormatAllowed(allowed), ")")});
        }
      }
    }
  }
  return out;
}

}  // namespace hivesim::lint
